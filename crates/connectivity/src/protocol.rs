//! The distributed donor-search protocol (Barszcz's DCF3D parallelization).
//!
//! Per timestep, after hole cutting and fringe identification:
//!
//! 1. every rank broadcasts the bounding box of its owned region (the
//!    "bounding box information ... broadcast globally"),
//! 2. each rank consults its grid's hierarchical search list and the boxes
//!    to decide which processor to send each IGBP search request to,
//! 3. requests are sent asynchronously; every rank services the requests it
//!    receives (the *donor search* — step 3 of Fig. 3, the dominant and
//!    load-imbalanced cost), interpolates, and replies,
//! 4. a request whose walk leaves the serving rank's subdomain is retried on
//!    the next candidate processor (equivalent to the paper's forwarding
//!    across processor boundaries), then on the next grid in the hierarchy.
//!
//! "nth-level restart": each rank caches its fringe points' donors
//! (rank + global donor cell) and sends the next step's first request
//! straight there with a warm-start hint.
//!
//! The protocol runs in deterministic rounds (an allgather of per-rank send
//! counts opens each round) so virtual times are bit-reproducible; the
//! paper's asynchronous overlap is retained within a round — a rank services
//! everything it received before waiting on its own replies.

use crate::arena::ConnArena;
use crate::donor::{center_start, walk_search_batch, BatchQuery, SearchOutcome};
use crate::holes::Igbp;
use crate::interp::{interpolate, FLOPS_PER_INTERP};
use crate::inverse_map::{occupancy_admits_posed, InverseMap, OCC_ALL, OCC_WORDS};
use overset_comm::metrics::names;
use overset_comm::trace::ArgVal;
use overset_comm::{Comm, Wire, WireError, WireReader, WorkClass};
use overset_grid::index::{Ijk, IndexBox};
use overset_grid::{Aabb, RigidTransform};
use overset_solver::Block;
use std::collections::HashMap;

/// Message tag base for connectivity traffic (distinct from solver tags).
const TAG_BASE: u64 = 10_000;
const MAX_ROUNDS: usize = 24;

/// Global, rank-replicated description of the partition, needed for routing.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Component grid each rank works on.
    pub grid_of_rank: Vec<usize>,
    /// Global rank range of each grid.
    pub ranks_of_grid: Vec<std::ops::Range<usize>>,
    /// Hierarchical donor-search lists per grid.
    pub search_order: Vec<Vec<usize>>,
}

/// Per-rank donor cache for nth-level restart: fringe node → (donor rank,
/// donor grid, donor cell in *global* donor-grid indices, relaxed donor).
#[derive(Clone, Debug, Default)]
pub struct DonorCache {
    map: HashMap<Ijk, (usize, usize, Ijk, bool)>,
}

impl DonorCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidate everything (the A1 restart-off ablation).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Remap donor *ranks* after a repartition: the cached donor cells are
    /// still geometrically valid; only their owning rank changed. `owner`
    /// maps (donor grid, donor cell anchor) to the new rank. Far cheaper
    /// than re-searching everything from scratch.
    pub fn remap_ranks(&mut self, owner: impl Fn(usize, Ijk) -> usize) {
        for (_, (rank, grid, cell, _)) in self.map.iter_mut() {
            *rank = owner(*grid, *cell);
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One rank's connectivity statistics for a step: the quantities Algorithm 2
/// and the paper's tables consume.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnStats {
    /// IGBPs owned by this rank.
    pub igbps: usize,
    /// Search-request points *serviced* by this rank: the paper's I(p).
    pub serviced: usize,
    /// Of the owned IGBPs, how many were resolved.
    pub resolved: usize,
    pub orphans: usize,
    /// Total walk steps performed while servicing.
    pub walk_steps: u64,
    /// Rounds until global quiescence.
    pub rounds: usize,
}

impl Wire for ConnStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.igbps.encode(out);
        self.serviced.encode(out);
        self.resolved.encode(out);
        self.orphans.encode(out);
        self.walk_steps.encode(out);
        self.rounds.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ConnStats {
            igbps: usize::decode(r)?,
            serviced: usize::decode(r)?,
            resolved: usize::decode(r)?,
            orphans: usize::decode(r)?,
            walk_steps: u64::decode(r)?,
            rounds: usize::decode(r)?,
        })
    }
}

#[derive(Clone, Copy)]
pub(crate) struct ReqPoint {
    id: u32,
    xyz: [f64; 3],
    /// Warm-start hint: donor cell in global donor-grid indices.
    hint: Option<Ijk>,
    /// Last-resort pass: accept donors whose stencil touches holes.
    relaxed: bool,
}

const REQ_POINT_BYTES: usize = 44;

// `Ijk` lives in the grid crate, which does not depend on overset-comm, so
// it cannot implement `Wire` itself; the protocol encodes it inline as
// three indices. These impls define the on-the-wire schema of the search
// protocol — field order is part of the format (docs/TRANSPORT.md).
fn encode_ijk(c: Ijk, out: &mut Vec<u8>) {
    c.i.encode(out);
    c.j.encode(out);
    c.k.encode(out);
}

fn decode_ijk(r: &mut WireReader<'_>) -> Result<Ijk, WireError> {
    Ok(Ijk::new(usize::decode(r)?, usize::decode(r)?, usize::decode(r)?))
}

impl Wire for ReqPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.xyz.encode(out);
        match self.hint {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                encode_ijk(c, out);
            }
        }
        self.relaxed.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = u32::decode(r)?;
        let xyz = <[f64; 3]>::decode(r)?;
        let hint = match r.u8()? {
            0 => None,
            1 => Some(decode_ijk(r)?),
            _ => return Err(WireError::Invalid("ReqPoint hint discriminant")),
        };
        let relaxed = bool::decode(r)?;
        Ok(ReqPoint { id, xyz, hint, relaxed })
    }
}

#[derive(Clone, Copy)]
pub(crate) enum Answer {
    Found { value: [f64; 5], cell_global: Ijk },
    Miss,
}

const ANSWER_BYTES: usize = 68;

impl Wire for Answer {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Answer::Found { value, cell_global } => {
                out.push(0);
                value.encode(out);
                encode_ijk(*cell_global, out);
            }
            Answer::Miss => out.push(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Answer::Found { value: <[f64; 5]>::decode(r)?, cell_global: decode_ijk(r)? }),
            1 => Ok(Answer::Miss),
            _ => Err(WireError::Invalid("Answer discriminant")),
        }
    }
}

/// One rank's entry in the routing broadcast, decoded: the world-frame box
/// requests are routed by, the lattice box its occupancy bits were marked
/// in, and the inverse pose mapping world points back into that lattice.
/// For static ranks (and ranks without a map) the pose is the identity and
/// `world == lat`, reproducing the legacy box+occupancy routing exactly.
pub(crate) struct RankRoute {
    world: Aabb,
    lat: Aabb,
    inv_pose: RigidTransform,
    occ: [u64; OCC_WORDS],
}

impl RankRoute {
    /// Could this rank's cells possibly contain `p`? Conservative: `false`
    /// only when the routing box or the (pose-corrected) occupancy mask
    /// proves no cell can hold the point.
    #[inline]
    fn admits(&self, p: [f64; 3]) -> bool {
        self.world.contains(p) && occupancy_admits_posed(&self.occ, &self.lat, &self.inv_pose, p)
    }
}

/// Wire size of one rank's routing broadcast entry: world box + lattice box
/// (6 f64 each), flattened inverse pose (10 f64), occupancy words.
const ROUTE_BYTES: usize = 48 + 48 + 80 + 8 * OCC_WORDS;

/// One rank's routing broadcast: world-frame routing box, lattice box,
/// flattened inverse pose, and the coarse occupancy mask.
type RouteMsg = ([f64; 6], [f64; 6], [f64; 10], [u64; OCC_WORDS]);

/// Pending state of one unresolved IGBP during the round loop. `Copy`, and
/// candidate ranks live as a range into the arena's flat `cand_pool` — the
/// per-IGBP candidate vector was the dominant per-step allocation.
#[derive(Clone, Copy)]
pub(crate) struct Pending {
    igbp: usize,
    /// Index into the search hierarchy of this rank's grid (usize::MAX when
    /// trying the cached donor first).
    level: usize,
    /// Start of this IGBP's candidate ranks in the arena `cand_pool`.
    cand_start: u32,
    /// Number of candidate ranks in the range.
    cand_len: u32,
    /// Cursor into the range: the next candidate to try. Advancing the
    /// cursor on a miss is O(1).
    cand_idx: u32,
    hint: Option<Ijk>,
    /// Second sweep through the hierarchy with relaxed donor acceptance.
    relaxed: bool,
}

impl Pending {
    /// No candidate rank left to try at the current hierarchy level.
    fn exhausted(&self) -> bool {
        self.cand_idx >= self.cand_len
    }

    /// The candidate rank the cursor points at.
    fn current(&self, cand_pool: &[usize]) -> usize {
        cand_pool[(self.cand_start + self.cand_idx) as usize]
    }
}

/// Run the distributed connectivity solution for this rank's block.
///
/// Preconditions: holes cut and `igbps` identified (see [`crate::holes`]),
/// and the block's halo state freshly exchanged (donor stencils near
/// subdomain edges read halo values).
pub fn connect_distributed(
    block: &mut Block,
    igbps: &[Igbp],
    topo: &Topology,
    cache: &mut DonorCache,
    comm: &mut Comm,
) -> ConnStats {
    connect_distributed_with_map(block, igbps, topo, cache, comm, None)
}

/// [`connect_distributed`] accelerated by this rank's inverse map (built for
/// the block's *current* geometry): cold donor searches start from the map's
/// O(1) seed instead of the block center, and the map's coarse occupancy
/// mask rides along with the bounding-box broadcast so candidate routing
/// prunes ranks whose boxes contain a point but whose cells cannot. Donors,
/// weights and orphans are identical with or without the map — pruning only
/// removes ranks that would certainly answer Miss. With `inv = None` the
/// rank broadcasts an all-ones mask and cold-starts from the center (the
/// exact legacy protocol).
pub fn connect_distributed_with_map(
    block: &mut Block,
    igbps: &[Igbp],
    topo: &Topology,
    cache: &mut DonorCache,
    comm: &mut Comm,
    inv: Option<&InverseMap>,
) -> ConnStats {
    let mut arena = ConnArena::new();
    connect_distributed_arena(block, igbps, topo, cache, comm, inv, &mut arena)
}

/// [`connect_distributed_with_map`] running on a caller-owned [`ConnArena`].
/// The arena only changes *where* scratch collections get their memory —
/// the protocol, its message traffic, and every flop charge are identical
/// whether the arena is fresh or warm, so states and virtual times are
/// bit-identical across the two; a persistent arena just drops the
/// steady-state transient-allocation count to near zero.
pub fn connect_distributed_arena(
    block: &mut Block,
    igbps: &[Igbp],
    topo: &Topology,
    cache: &mut DonorCache,
    comm: &mut Comm,
    inv: Option<&InverseMap>,
    arena: &mut ConnArena,
) -> ConnStats {
    let nranks = comm.size();
    let me = comm.rank();
    let my_grid = topo.grid_of_rank[me];
    let mut stats = ConnStats { igbps: igbps.len(), ..Default::default() };
    let t_conn = comm.now();
    arena.begin_protocol(nranks);
    let isa = arena.isa;
    let ConnArena {
        pending,
        next_pending,
        cand_pool,
        orphaned,
        outgoing,
        sent_to,
        writes,
        answers_by_id,
        routes,
        req_pool,
        ans_pool,
        counts_pool,
        walk_queries,
        walk_outcomes,
        walk_costs,
        ..
    } = arena;

    // 1. Broadcast routing info. A rank with a map broadcasts its lattice
    //    box (so every receiver bins points into exactly the lattice the
    //    occupancy bits were marked on), the world-frame routing box, and
    //    the inverse pose that maps world points back into the lattice;
    //    while the pose is the identity — always, for static grids — the
    //    two boxes coincide and routing is exactly the legacy behavior.
    let (my_world, my_lat, my_pose, my_occ) = match inv {
        Some(m) => (m.world_bounds(), m.bounds(), m.inv_pose().to_flat(), m.occupancy()),
        None => {
            let bb = owned_bbox(block);
            (bb, bb, RigidTransform::IDENTITY.to_flat(), OCC_ALL)
        }
    };
    let wflat: [f64; 6] = [
        my_world.min[0],
        my_world.min[1],
        my_world.min[2],
        my_world.max[0],
        my_world.max[1],
        my_world.max[2],
    ];
    let lflat: [f64; 6] =
        [my_lat.min[0], my_lat.min[1], my_lat.min[2], my_lat.max[0], my_lat.max[1], my_lat.max[2]];
    let gathered: Vec<RouteMsg> = comm.allgather((wflat, lflat, my_pose, my_occ), ROUTE_BYTES);
    routes.extend(gathered.iter().map(|(w, l, p, o)| RankRoute {
        world: Aabb::new([w[0], w[1], w[2]], [w[3], w[4], w[5]]),
        lat: Aabb::new([l[0], l[1], l[2]], [l[3], l[4], l[5]]),
        inv_pose: RigidTransform::from_flat(*p),
        occ: *o,
    }));

    // 2. Seed pending requests: cached donors first, hierarchy otherwise.
    for (idx, ig) in igbps.iter().enumerate() {
        if let Some(&(rank, _grid, cell, relaxed)) = cache.map.get(&ig.node) {
            let cand_start = cand_pool.len() as u32;
            cand_pool.push(rank);
            pending.push(Pending {
                igbp: idx,
                level: usize::MAX,
                cand_start,
                cand_len: 1,
                cand_idx: 0,
                hint: Some(cell),
                relaxed,
            });
        } else {
            let mut p = Pending {
                igbp: idx,
                level: 0,
                cand_start: 0,
                cand_len: 0,
                cand_idx: 0,
                hint: None,
                relaxed: false,
            };
            // Advance through the hierarchy until some grid's boxes contain
            // the point (the first listed grid need not).
            refill_candidates(&mut p, cand_pool, ig, my_grid, topo, routes);
            while p.exhausted() {
                p.level += 1;
                if p.level >= topo.search_order[my_grid].len() {
                    break;
                }
                refill_candidates(&mut p, cand_pool, ig, my_grid, topo, routes);
            }
            pending.push(p);
        }
    }
    // Drop IGBPs with no candidates anywhere (instant orphans).
    pending.retain(|p| {
        if p.exhausted() {
            orphaned.push(p.igbp);
            false
        } else {
            true
        }
    });

    // 3. Round loop. Interpolated values are buffered and applied only
    //    after the loop: every donor rank then serves from its
    //    pre-connectivity state, so an answer cannot depend on which round
    //    a request happens to arrive in (occupancy pruning shortens miss
    //    chains, which would otherwise shift arrival rounds between the
    //    map-on and map-off modes and perturb values at the last bit).
    let mut round = 0usize;
    loop {
        let active: usize = comm.allreduce_sum_usize(pending.len());
        if active == 0 || round >= MAX_ROUNDS {
            break;
        }
        stats.rounds = round + 1;

        // Build per-destination request lists.
        for p in pending.iter() {
            let dst = p.current(cand_pool);
            let ig = &igbps[p.igbp];
            outgoing[dst].push(ReqPoint {
                id: p.igbp as u32,
                xyz: ig.xyz,
                hint: p.hint,
                relaxed: p.relaxed,
            });
        }
        // The count vector is consumed by the collective, but the gathered
        // result hands back `nranks` freshly decoded vectors — one is
        // recycled through the pool for the next round, so steady-state
        // rounds allocate no count storage.
        let mut my_counts = counts_pool.take();
        my_counts.extend(outgoing.iter().map(|v| v.len() as u32));
        let mut all_counts: Vec<Vec<u32>> = comm.allgather(my_counts, 4 * nranks);

        // Send requests. Each request carries an empty reply buffer from
        // the requester's answer pool, and the servicer sends both buffers
        // back with the reply — every vector makes a full round trip home,
        // so pool balance is independent of how asymmetric the request
        // traffic is (a rank that only *asks* would otherwise bleed its
        // buffers to the ranks that *serve*, reallocating every round).
        let tag_req = TAG_BASE + 2 * round as u64;
        let tag_rep = tag_req + 1;
        sent_to.clear();
        for (dst, out) in outgoing.iter_mut().enumerate() {
            if out.is_empty() {
                continue;
            }
            let nbytes = out.len() * REQ_POINT_BYTES;
            let pts = std::mem::replace(out, req_pool.take());
            let reply_buf: Vec<(u32, Answer)> = ans_pool.take();
            comm.send(dst, tag_req, (pts, reply_buf), nbytes);
            sent_to.push(dst);
        }

        // Service incoming requests (in rank order — deterministic).
        for (src, counts) in all_counts.iter().enumerate() {
            let n_in = counts[me] as usize;
            if n_in == 0 {
                continue;
            }
            let t_serve = comm.now();
            let (mut pts, mut answers): (Vec<ReqPoint>, Vec<(u32, Answer)>) =
                comm.recv(src, tag_req);
            assert_eq!(pts.len(), n_in);
            stats.serviced += n_in;
            comm.metrics_mut().add(names::CONN_SERVICED, n_in as u64);
            let mut service_flops = 0u64;
            let steps_before = stats.walk_steps;
            // Lane-lockstep donor search over the whole request batch: up
            // to W pending points walk side by side, one SIMD lane each.
            // Outcomes and per-point costs are bit-identical to searching
            // the points one at a time with the scalar code.
            walk_queries.clear();
            walk_queries.extend(pts.iter().map(|pt| {
                let start = match (pt.hint, inv) {
                    // Warm restart hint beats everything.
                    (Some(gc), _) => clamp_to_local_cell(block, gc),
                    // Cold search: O(1) inverse-map seed near the target
                    // (posed queries charge for the inverse transform).
                    (None, Some(m)) => {
                        service_flops += m.query_flops();
                        m.query(pt.xyz)
                    }
                    // Legacy cold start from the block center.
                    (None, None) => center_start(block),
                };
                BatchQuery { xyz: pt.xyz, start, relaxed: pt.relaxed }
            }));
            walk_search_batch(block, walk_queries, isa, walk_outcomes, walk_costs);
            for (pt, (out, cost)) in pts.iter().zip(walk_outcomes.iter().zip(walk_costs.iter())) {
                stats.walk_steps += cost.walk_steps;
                service_flops += cost.flops();
                let ans = match out {
                    SearchOutcome::Found(d) => {
                        let value = interpolate(block, d);
                        service_flops += FLOPS_PER_INTERP;
                        Answer::Found { value, cell_global: block.to_global(d.cell) }
                    }
                    _ => Answer::Miss,
                };
                answers.push((pt.id, ans));
            }
            comm.compute(service_flops as f64, WorkClass::Search);
            comm.metrics_mut().add(names::CONN_WALK_STEPS, stats.walk_steps - steps_before);
            // Hand both buffers back to their owner (the request vector
            // emptied: its capacity, not its contents, travels home).
            pts.clear();
            comm.send(src, tag_rep, (pts, answers), n_in * ANSWER_BYTES);
            comm.trace_complete(
                "conn",
                "serve",
                t_serve,
                &[("src", ArgVal::U64(src as u64)), ("points", ArgVal::U64(n_in as u64))],
            );
        }

        // Park one gathered count vector for the next round's fill.
        if let Some(v) = all_counts.pop() {
            counts_pool.put(v);
        }

        // Collect replies and update pending set.
        answers_by_id.clear();
        for &dst in sent_to.iter() {
            let (reqv, answers): (Vec<ReqPoint>, Vec<(u32, Answer)>) = comm.recv(dst, tag_rep);
            req_pool.put(reqv);
            for &(id, a) in &answers {
                answers_by_id.insert(id, (dst, a));
            }
            ans_pool.put(answers);
        }
        next_pending.clear();
        for &(mut p) in pending.iter() {
            let (from, ans) = answers_by_id[&(p.igbp as u32)];
            match ans {
                Answer::Found { value, cell_global } => {
                    if p.level == usize::MAX {
                        comm.metrics_mut().inc(names::CONN_CACHE_HIT);
                    }
                    let ig = &igbps[p.igbp];
                    writes.push((ig.node, value));
                    cache
                        .map
                        .insert(ig.node, (from, topo.grid_of_rank[from], cell_global, p.relaxed));
                    stats.resolved += 1;
                }
                Answer::Miss => {
                    // Advance to the next candidate / hierarchy level; after
                    // the strict hierarchy is exhausted, sweep it once more
                    // with relaxed donor acceptance before giving up.
                    if p.level == usize::MAX {
                        comm.metrics_mut().inc(names::CONN_CACHE_MISS);
                    }
                    let ig = igbps[p.igbp];
                    p.hint = None;
                    p.cand_idx += 1;
                    while p.exhausted() {
                        p.level = if p.level == usize::MAX { 0 } else { p.level + 1 };
                        if p.level >= topo.search_order[my_grid].len() {
                            if p.relaxed {
                                break;
                            }
                            p.relaxed = true;
                            p.level = 0;
                        }
                        refill_candidates(&mut p, cand_pool, &ig, my_grid, topo, routes);
                    }
                    if p.exhausted() {
                        orphaned.push(p.igbp);
                        cache.map.remove(&ig.node);
                    } else {
                        comm.metrics_mut().inc(names::CONN_FORWARDS);
                        next_pending.push(p);
                    }
                }
            }
        }
        std::mem::swap(pending, next_pending);
        round += 1;
    }

    for &(node, value) in writes.iter() {
        block.q.set_node(node, value);
    }

    // Anything still pending at the round cap is an orphan this step.
    for p in pending.iter() {
        orphaned.push(p.igbp);
    }
    stats.orphans = orphaned.len();
    let m = comm.metrics_mut();
    m.add(names::CONN_ORPHANS, stats.orphans as u64);
    m.add(names::CONN_ROUNDS, stats.rounds as u64);
    comm.trace_complete(
        "conn",
        "connect",
        t_conn,
        &[("igbps", ArgVal::U64(stats.igbps as u64)), ("rounds", ArgVal::U64(stats.rounds as u64))],
    );
    stats
}

/// Candidate ranks for one IGBP at its current hierarchy level: the ranks of
/// the level's grid whose bounding boxes contain the point — and whose
/// occupancy masks admit it, pruning ranks whose *box* overlaps but whose
/// *cells* cannot hold the point (the hollow of an O-grid) — nearest
/// bounding box center first (deterministic rank-id tie-break). Proximity
/// ordering makes the first candidate almost always the owner, so cold
/// searches rarely pay for a miss.
fn refill_candidates(
    p: &mut Pending,
    cand_pool: &mut Vec<usize>,
    ig: &Igbp,
    my_grid: usize,
    topo: &Topology,
    routes: &[RankRoute],
) {
    let level = if p.level == usize::MAX { 0 } else { p.level };
    p.cand_idx = 0;
    let Some(&grid) = topo.search_order[my_grid].get(level) else {
        p.cand_start = cand_pool.len() as u32;
        p.cand_len = 0;
        return;
    };
    p.level = level;
    let start = cand_pool.len();
    cand_pool.extend(topo.ranks_of_grid[grid].clone().filter(|&r| routes[r].admits(ig.xyz)));
    let dist2 = |r: usize| -> f64 {
        let c = routes[r].world.center();
        (c[0] - ig.xyz[0]).powi(2) + (c[1] - ig.xyz[1]).powi(2) + (c[2] - ig.xyz[2]).powi(2)
    };
    // Strict total order (distance, then rank id), so the unstable sort is
    // deterministic and allocation-free.
    cand_pool[start..]
        .sort_unstable_by(|&a, &b| dist2(a).partial_cmp(&dist2(b)).unwrap().then(a.cmp(&b)));
    p.cand_start = start as u32;
    p.cand_len = (cand_pool.len() - start) as u32;
}

/// Bounding box of a block's owned region *plus one halo layer of nodes*:
/// any point whose containing cell is anchored at an owned node lies within
/// this box (the cell's far corners are at most one layer outside the owned
/// nodes, and the halo carries real neighbor geometry). Without the halo
/// layer, points in boundary cells of stretched grids would be routed
/// nowhere.
pub fn owned_bbox(block: &Block) -> Aabb {
    let mut bb = Aabb::EMPTY;
    let ow = block.owned_local();
    let grown = IndexBox::new(
        Ijk::new(
            ow.lo.i.saturating_sub(1),
            ow.lo.j.saturating_sub(1),
            ow.lo.k.saturating_sub(usize::from(block.halo[2] > 0)),
        ),
        Ijk::new(
            (ow.hi.i + 1).min(block.local_dims.ni),
            (ow.hi.j + 1).min(block.local_dims.nj),
            (ow.hi.k + usize::from(block.halo[2] > 0)).min(block.local_dims.nk),
        ),
    );
    for p in grown.iter() {
        bb.include(block.coords[p]);
    }
    bb.inflate(1e-9 * bb.diagonal().max(1.0))
}

/// Convert a global donor-grid cell hint to a local cell on this block,
/// clamped into local storage (the hint may point slightly off this rank's
/// region after motion or when the cache predates a repartition).
fn clamp_to_local_cell(block: &Block, global_cell: Ijk) -> Ijk {
    let h = block.halo;
    let lo = block.owned.lo;
    let ld = block.local_dims;
    let map1 = |g: usize, lo: usize, h: usize, n: usize| -> usize {
        (g as isize + h as isize - lo as isize).clamp(0, n as isize - 2) as usize
    };
    Ijk::new(
        map1(global_cell.i, lo.i, h[0], ld.ni),
        map1(global_cell.j, lo.j, h[1], ld.nj),
        map1(global_cell.k, lo.k, h[2], ld.nk.max(2)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_comm::{MachineModel, Universe};
    use overset_grid::curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, Face, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::{Dims, IndexBox};
    use overset_solver::FlowConditions;

    fn inner_grid() -> CurvilinearGrid {
        let di = Dims::new(17, 17, 1);
        let ci = Field3::from_fn(di, |p| [1.0 + 0.125 * p.i as f64, 1.0 + 0.125 * p.j as f64, 0.0]);
        let mut gi = CurvilinearGrid::new("inner", ci, GridKind::NearBody);
        gi.patches = Face::ALL[..4]
            .iter()
            .map(|&f| BoundaryPatch { face: f, kind: BcKind::OversetOuter })
            .collect();
        gi
    }

    fn outer_grid() -> CurvilinearGrid {
        let do_ = Dims::new(17, 17, 1);
        let co = Field3::from_fn(do_, |p| [0.25 * p.i as f64, 0.25 * p.j as f64, 0.0]);
        let mut go = CurvilinearGrid::new("outer", co, GridKind::Background);
        go.patches = Face::ALL[..4]
            .iter()
            .map(|&f| BoundaryPatch { face: f, kind: BcKind::Farfield })
            .collect();
        go
    }

    /// 3 ranks: rank 0 owns the inner grid; ranks 1-2 split the outer grid.
    fn topo() -> Topology {
        Topology {
            grid_of_rank: vec![0, 1, 1],
            ranks_of_grid: vec![0..1, 1..3],
            search_order: vec![vec![1], vec![0]],
        }
    }

    fn build_block(rank: usize, fc: &FlowConditions) -> Block {
        match rank {
            0 => {
                let g = inner_grid();
                Block::from_grid(0, &g, g.dims().full_box(), [None; 6], fc)
            }
            1 => {
                let g = outer_grid();
                let owned = IndexBox::new(Ijk::new(0, 0, 0), Ijk::new(9, 17, 1));
                Block::from_grid(1, &g, owned, [None, Some(2), None, None, None, None], fc)
            }
            _ => {
                let g = outer_grid();
                let owned = IndexBox::new(Ijk::new(9, 0, 0), Ijk::new(17, 17, 1));
                Block::from_grid(1, &g, owned, [Some(1), None, None, None, None, None], fc)
            }
        }
    }

    fn paint_linear(b: &mut Block) {
        for p in b.local_dims.iter() {
            let [x, y, _] = b.coords[p];
            b.q.set_node(p, [1.0 + x + 2.0 * y, 0.0, 0.0, 0.0, 1.0]);
        }
    }

    #[test]
    fn distributed_resolution_matches_interpolant() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let out = Universe::builder().ranks(3).machine(&MachineModel::modern()).run(|comm| {
            let mut block = build_block(comm.rank(), &fc);
            if comm.rank() > 0 {
                paint_linear(&mut block);
            }
            let (igbps, _) = crate::holes::cut_holes_and_find_fringe(&mut block, &[]);
            let mut cache = DonorCache::new();
            let stats = connect_distributed(&mut block, &igbps, &topo(), &mut cache, comm);
            // Verify resolved fringe values against the analytic field.
            let mut max_err = 0.0f64;
            for ig in &igbps {
                let q = block.q.node(ig.node);
                let expect = 1.0 + ig.xyz[0] + 2.0 * ig.xyz[1];
                max_err = max_err.max((q[0] - expect).abs());
            }
            (stats, max_err)
        });
        let (s0, err0) = &out[0].result;
        assert!(s0.igbps > 0);
        assert_eq!(s0.orphans, 0, "{s0:?}");
        assert_eq!(s0.resolved, s0.igbps);
        assert!(*err0 < 1e-10, "interp err {err0}");
        // The two outer ranks serviced the inner grid's requests.
        let (s1, _) = &out[1].result;
        let (s2, _) = &out[2].result;
        assert!(s1.serviced + s2.serviced >= s0.igbps);
    }

    #[test]
    fn restart_reduces_walk_steps_and_rounds_stay_bounded() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let out = Universe::builder().ranks(3).machine(&MachineModel::modern()).run(|comm| {
            let mut block = build_block(comm.rank(), &fc);
            paint_linear(&mut block);
            let mut cache = DonorCache::new();
            let (igbps, _) = crate::holes::cut_holes_and_find_fringe(&mut block, &[]);
            let s1 = connect_distributed(&mut block, &igbps, &topo(), &mut cache, comm);
            let (igbps2, _) = crate::holes::cut_holes_and_find_fringe(&mut block, &[]);
            let s2 = connect_distributed(&mut block, &igbps2, &topo(), &mut cache, comm);
            (s1, s2)
        });
        // Walk work on the servicing ranks drops with warm hints.
        let cold: u64 = out.iter().map(|o| o.result.0.walk_steps).sum();
        let warm: u64 = out.iter().map(|o| o.result.1.walk_steps).sum();
        assert!(warm < cold, "restart not effective: {warm} vs {cold}");
        // Warm pass resolves in a single round.
        assert!(out[0].result.1.rounds <= out[0].result.0.rounds);
    }

    #[test]
    fn deterministic_virtual_times() {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let run = || {
            Universe::builder().ranks(3).machine(&MachineModel::ibm_sp2()).run(|comm| {
                let mut block = build_block(comm.rank(), &fc);
                paint_linear(&mut block);
                let (igbps, _) = crate::holes::cut_holes_and_find_fringe(&mut block, &[]);
                let mut cache = DonorCache::new();
                connect_distributed(&mut block, &igbps, &topo(), &mut cache, comm);
                comm.now()
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result.to_bits(), y.result.to_bits());
        }
    }

    #[test]
    fn metrics_registry_matches_protocol_stats_across_ranks() {
        use overset_comm::metrics::MetricsRegistry;
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let out = Universe::builder().ranks(3).machine(&MachineModel::modern()).run(|comm| {
            let mut block = build_block(comm.rank(), &fc);
            paint_linear(&mut block);
            let mut cache = DonorCache::new();
            let (igbps, _) = crate::holes::cut_holes_and_find_fringe(&mut block, &[]);
            let s1 = connect_distributed(&mut block, &igbps, &topo(), &mut cache, comm);
            let (igbps2, _) = crate::holes::cut_holes_and_find_fringe(&mut block, &[]);
            let s2 = connect_distributed(&mut block, &igbps2, &topo(), &mut cache, comm);
            (s1, s2)
        });
        // Per-rank: the registry's serviced counter is exactly the sum of
        // the per-step stats — single source of truth for I(p).
        for o in &out {
            let expect = (o.result.0.serviced + o.result.1.serviced) as u64;
            assert_eq!(o.metrics.counter(names::CONN_SERVICED), expect);
        }
        // Cross-rank aggregation sums counters and merges histograms.
        let regs: Vec<MetricsRegistry> = out.iter().map(|o| o.metrics.clone()).collect();
        let agg = MetricsRegistry::aggregate(&regs);
        let total: u64 =
            out.iter().map(|o| (o.result.0.serviced + o.result.1.serviced) as u64).sum();
        assert!(total > 0);
        assert_eq!(agg.counter(names::CONN_SERVICED), total);
        // The warm second pass produced cache hits on the requesting rank.
        assert!(agg.counter(names::CONN_CACHE_HIT) > 0);
        assert!(agg.cache_hit_rate().unwrap() > 0.5);
    }

    #[test]
    fn service_load_concentrates_on_overlap_owner() {
        // Rank 1 owns the left half of the outer grid; the inner grid sits
        // at [1,3]^2, so both outer ranks serve, but rank 0 serves nothing
        // (no outer fringe reaches into the inner grid's bbox...
        // actually outer grid has Farfield edges: no IGBPs of its own).
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let out = Universe::builder().ranks(3).machine(&MachineModel::modern()).run(|comm| {
            let mut block = build_block(comm.rank(), &fc);
            paint_linear(&mut block);
            let (igbps, _) = crate::holes::cut_holes_and_find_fringe(&mut block, &[]);
            let mut cache = DonorCache::new();
            connect_distributed(&mut block, &igbps, &topo(), &mut cache, comm)
        });
        assert_eq!(out[1].result.igbps + out[2].result.igbps, 0);
        assert_eq!(out[0].result.serviced, 0);
        assert!(out[1].result.serviced > 0);
        assert!(out[2].result.serviced > 0);
    }

    #[test]
    fn protocol_messages_roundtrip_on_the_wire() {
        let reqs = [
            ReqPoint { id: 7, xyz: [1.5, -2.25, 1e300], hint: None, relaxed: false },
            ReqPoint {
                id: u32::MAX,
                xyz: [0.0, -0.0, f64::NAN],
                hint: Some(Ijk::new(3, 0, 9)),
                relaxed: true,
            },
        ];
        for r in reqs {
            let back = ReqPoint::from_wire_bytes(&r.to_wire_bytes()).unwrap();
            assert_eq!(back.id, r.id);
            assert_eq!(back.xyz.map(f64::to_bits), r.xyz.map(f64::to_bits));
            assert_eq!(back.hint, r.hint);
            assert_eq!(back.relaxed, r.relaxed);
        }
        let answers = [
            Answer::Found { value: [1.0, 2.0, 3.0, 4.0, 5.0], cell_global: Ijk::new(1, 2, 3) },
            Answer::Miss,
        ];
        for a in answers {
            let back = Answer::from_wire_bytes(&a.to_wire_bytes()).unwrap();
            match (a, back) {
                (
                    Answer::Found { value: v1, cell_global: c1 },
                    Answer::Found { value: v2, cell_global: c2 },
                ) => {
                    assert_eq!(v1.map(f64::to_bits), v2.map(f64::to_bits));
                    assert_eq!(c1, c2);
                }
                (Answer::Miss, Answer::Miss) => {}
                _ => panic!("variant changed across the wire"),
            }
        }
        // Corrupt discriminants are rejected, not misread.
        assert!(Answer::from_wire_bytes(&[9]).is_err());
        let s =
            ConnStats { igbps: 4, serviced: 9, resolved: 4, orphans: 0, walk_steps: 77, rounds: 2 };
        let back = ConnStats::from_wire_bytes(&s.to_wire_bytes()).unwrap();
        assert_eq!(back.serviced, 9);
        assert_eq!(back.walk_steps, 77);
    }
}
