//! Serial domain-connectivity solution: all component grids resident in one
//! address space (one block per grid). Used by the single-processor (Cray
//! Y-MP) baseline of Table 6 and as the physics reference the distributed
//! protocol is validated against.

use crate::arena::ConnArena;
use crate::donor::{center_start, walk_search_isa, Donor, SearchCost, SearchOutcome};
use crate::holes::cut_holes_and_find_fringe_arena;
use crate::interp::{interpolate, FLOPS_PER_INTERP};
use crate::inverse_map::InverseMap;
use overset_grid::curvilinear::Solid;
use overset_grid::index::Ijk;
use overset_solver::Block;
use std::collections::HashMap;

/// Donor cache for nth-level restart, serial form: per (grid, fringe node) →
/// (donor grid, donor cell in that grid's local indices).
#[derive(Clone, Debug, Default)]
pub struct SerialCache {
    map: HashMap<(usize, Ijk), (usize, Ijk)>,
}

impl SerialCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Statistics of one serial connectivity solution.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialConnStats {
    pub igbps: usize,
    pub resolved: usize,
    pub orphans: usize,
    pub walk_steps: u64,
    pub flops: u64,
}

/// Re-establish domain connectivity serially:
/// 1. cut holes / find fringe on every grid,
/// 2. for each IGBP, search its grid's hierarchy list for a donor (warm
///    started from the cache when possible),
/// 3. interpolate and impose the fringe values.
pub fn connect_serial(
    blocks: &mut [Block],
    search_order: &[Vec<usize>],
    solids: &[(usize, Solid)],
    cache: &mut SerialCache,
) -> SerialConnStats {
    connect_serial_with_maps(blocks, search_order, solids, cache, None)
}

/// [`connect_serial`] accelerated by per-grid inverse maps (`maps[g]` built
/// for `blocks[g]`'s current geometry): hole cutting is masked by each map's
/// ternary solid lattice and cold donor searches start from the map's O(1)
/// seed instead of the donor grid's center. Results (blanking, donors,
/// orphans, fringe values) are identical with or without maps — only the
/// flop charge drops. With `maps = None` this *is* the legacy serial path.
pub fn connect_serial_with_maps(
    blocks: &mut [Block],
    search_order: &[Vec<usize>],
    solids: &[(usize, Solid)],
    cache: &mut SerialCache,
    maps: Option<&[InverseMap]>,
) -> SerialConnStats {
    let mut arena = ConnArena::new();
    connect_serial_arena(blocks, search_order, solids, cache, maps, &mut arena)
}

/// [`connect_serial_with_maps`] running on a caller-owned [`ConnArena`]:
/// per-grid IGBP lists, the deferred-write buffer and the grid bounding
/// boxes keep their capacity across steps. Results are bit-identical with
/// a fresh or warm arena — only host allocation counts differ.
pub fn connect_serial_arena(
    blocks: &mut [Block],
    search_order: &[Vec<usize>],
    solids: &[(usize, Solid)],
    cache: &mut SerialCache,
    maps: Option<&[InverseMap]>,
    arena: &mut ConnArena,
) -> SerialConnStats {
    let ngrids = blocks.len();
    assert_eq!(search_order.len(), ngrids);
    if let Some(ms) = maps {
        assert_eq!(ms.len(), ngrids);
    }
    let mut stats = SerialConnStats::default();

    // Phase 1: hole cutting and fringe identification. Last step's IGBP
    // lists go back to the pool first, so the cutter reuses their capacity.
    while let Some(v) = arena.igbps_per_grid.pop() {
        arena.igbp_pool.put(v);
    }
    for (g, b) in blocks.iter_mut().enumerate() {
        let (igbps, flops) =
            cut_holes_and_find_fringe_arena(b, solids, maps.map(|ms| &ms[g]), arena);
        stats.flops += flops;
        arena.igbps_per_grid.push(igbps);
    }

    // Donor-grid bounding boxes for cheap rejection.
    arena.grid_bboxes.clear();
    arena.grid_bboxes.extend(blocks.iter().map(|b| {
        let bb = overset_grid::Aabb::from_points(b.coords.as_slice().iter());
        bb.inflate(1e-9 * bb.diagonal().max(1.0))
    }));
    arena.serial_writes.clear();
    let isa = arena.isa;
    let ConnArena { igbps_per_grid, serial_writes: writes, grid_bboxes: bboxes, .. } = &mut *arena;

    // Phase 2/3: search and interpolate. Interpolated values are buffered
    // and applied after every IGBP is resolved, so each donor reads the
    // pre-connectivity state — answers cannot depend on the order in which
    // fringe points happen to resolve.
    for g in 0..ngrids {
        let igbps = &igbps_per_grid[g];
        stats.igbps += igbps.len();
        for ig in igbps.iter() {
            let key = (g, ig.node);
            let mut found: Option<(usize, Donor)> = None;

            // Warm start at the cached donor.
            if let Some(&(dg, cell)) = cache.map.get(&key) {
                let mut cost = SearchCost::default();
                if let SearchOutcome::Found(d) =
                    walk_search_isa(&blocks[dg], ig.xyz, cell, &mut cost, false, isa)
                {
                    found = Some((dg, d));
                }
                stats.walk_steps += cost.walk_steps;
                stats.flops += cost.flops();
            }

            // Hierarchy search: strict pass, then a relaxed last-resort
            // pass (donors with holes in the stencil, weights renormalized).
            for relaxed in [false, true] {
                if found.is_some() {
                    break;
                }
                for &dg in &search_order[g] {
                    if !bboxes[dg].contains(ig.xyz) {
                        continue;
                    }
                    let mut cost = SearchCost::default();
                    let start = match maps {
                        Some(ms) => {
                            stats.flops += ms[dg].query_flops();
                            ms[dg].query(ig.xyz)
                        }
                        None => center_start(&blocks[dg]),
                    };
                    let out = walk_search_isa(&blocks[dg], ig.xyz, start, &mut cost, relaxed, isa);
                    stats.walk_steps += cost.walk_steps;
                    stats.flops += cost.flops();
                    if let SearchOutcome::Found(d) = out {
                        found = Some((dg, d));
                        break;
                    }
                }
            }

            match found {
                Some((dg, d)) => {
                    let value = interpolate(&blocks[dg], &d);
                    stats.flops += FLOPS_PER_INTERP;
                    writes.push((g, ig.node, value));
                    cache.map.insert(key, (dg, d.cell));
                    stats.resolved += 1;
                }
                None => {
                    // Orphan: keep the previous value.
                    cache.map.remove(&key);
                    stats.orphans += 1;
                }
            }
        }
    }
    for &(g, node, value) in writes.iter() {
        blocks[g].q.set_node(node, value);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_grid::curvilinear::{BcKind, BoundaryPatch, CurvilinearGrid, Face, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;
    use overset_solver::FlowConditions;

    /// Two overlapping 2-D Cartesian grids: a fine inner grid with overset
    /// outer boundaries embedded in a coarse background.
    fn two_grid_system() -> Vec<Block> {
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        // Inner: [1, 3]^2 with h = 0.125.
        let di = Dims::new(17, 17, 1);
        let ci = Field3::from_fn(di, |p| [1.0 + 0.125 * p.i as f64, 1.0 + 0.125 * p.j as f64, 0.0]);
        let mut gi = CurvilinearGrid::new("inner", ci, GridKind::NearBody);
        gi.patches = Face::ALL[..4]
            .iter()
            .map(|&f| BoundaryPatch { face: f, kind: BcKind::OversetOuter })
            .collect();
        // Outer: [0, 4]^2 with h = 0.25.
        let do_ = Dims::new(17, 17, 1);
        let co = Field3::from_fn(do_, |p| [0.25 * p.i as f64, 0.25 * p.j as f64, 0.0]);
        let mut go = CurvilinearGrid::new("outer", co, GridKind::Background);
        go.patches = Face::ALL[..4]
            .iter()
            .map(|&f| BoundaryPatch { face: f, kind: BcKind::Farfield })
            .collect();
        vec![
            Block::from_grid(0, &gi, di.full_box(), [None; 6], &fc),
            Block::from_grid(1, &go, do_.full_box(), [None; 6], &fc),
        ]
    }

    fn order() -> Vec<Vec<usize>> {
        vec![vec![1], vec![0]]
    }

    #[test]
    fn fringe_values_interpolated_from_background() {
        let mut blocks = two_grid_system();
        // Paint the background with a linear field; garbage on inner fringe.
        let bg = &mut blocks[1];
        for p in bg.local_dims.iter().collect::<Vec<_>>() {
            let [x, y, _] = bg.coords[p];
            bg.q.set_node(p, [1.0 + x + 2.0 * y, 0.0, 0.0, 0.0, 1.0]);
        }
        let mut cache = SerialCache::new();
        let stats = connect_serial(&mut blocks, &order(), &[], &mut cache);
        assert!(stats.igbps > 0);
        assert_eq!(stats.orphans, 0, "stats: {stats:?}");
        // Check an inner outer-boundary node got the background value.
        let node = blocks[0].to_local(Ijk::new(0, 8, 0)); // at (1.0, 2.0)
        let q = blocks[0].q.node(node);
        assert!((q[0] - (1.0 + 1.0 + 4.0)).abs() < 1e-10, "q0 = {}", q[0]);
    }

    #[test]
    fn second_pass_uses_cache_and_is_cheaper() {
        let mut blocks = two_grid_system();
        let mut cache = SerialCache::new();
        let s1 = connect_serial(&mut blocks, &order(), &[], &mut cache);
        assert!(!cache.is_empty());
        let s2 = connect_serial(&mut blocks, &order(), &[], &mut cache);
        assert_eq!(s1.igbps, s2.igbps);
        assert!(
            s2.walk_steps < s1.walk_steps / 2,
            "restart not effective: {} vs {}",
            s2.walk_steps,
            s1.walk_steps
        );
    }

    #[test]
    fn solid_hole_fringe_resolved_on_background() {
        let mut blocks = two_grid_system();
        // A solid owned by grid 0 cuts the background grid.
        let solids =
            vec![(0usize, Solid::Ellipsoid { center: [2.0, 2.0, 0.0], radii: [0.4, 0.4, 10.0] })];
        let mut cache = SerialCache::new();
        let stats = connect_serial(&mut blocks, &order(), &solids, &mut cache);
        // Background has a hole with fringe; those fringes find donors on
        // the fine inner grid (which covers [1,3]^2).
        let bg_holes = blocks[1]
            .owned_local()
            .iter()
            .filter(|&p| blocks[1].iblank[p] == overset_solver::Blank::Hole)
            .count();
        assert!(bg_holes > 0);
        assert_eq!(stats.orphans, 0, "{stats:?}");
    }

    #[test]
    fn moving_inner_grid_updates_connectivity() {
        let mut blocks = two_grid_system();
        let mut cache = SerialCache::new();
        connect_serial(&mut blocks, &order(), &[], &mut cache);
        let n0 = cache.len();
        // Move the inner grid; donors must re-resolve.
        let t = overset_grid::RigidTransform::translation([0.05, 0.02, 0.0]);
        blocks[0].apply_motion(&t, 0.1);
        let stats = connect_serial(&mut blocks, &order(), &[], &mut cache);
        assert_eq!(stats.orphans, 0);
        assert!(cache.len() >= n0);
    }

    #[test]
    fn maps_reduce_walk_work_with_same_resolution() {
        let mut a = two_grid_system();
        let mut b = two_grid_system();
        let mut ca = SerialCache::new();
        let mut cb = SerialCache::new();
        let sa = connect_serial(&mut a, &order(), &[], &mut ca);
        let maps: Vec<InverseMap> = b.iter().map(InverseMap::build).collect();
        let sb = connect_serial_with_maps(&mut b, &order(), &[], &mut cb, Some(&maps));
        assert_eq!(sa.igbps, sb.igbps);
        assert_eq!(sa.resolved, sb.resolved);
        assert_eq!(sa.orphans, sb.orphans);
        assert!(
            sb.walk_steps < sa.walk_steps,
            "seeded {} vs cold {} walk steps",
            sb.walk_steps,
            sa.walk_steps
        );
    }

    #[test]
    fn orphan_when_no_grid_contains_point() {
        let mut blocks = two_grid_system();
        // Restrict the search so the inner grid's fringe finds nothing.
        let bad_order = vec![vec![], vec![0]];
        let mut cache = SerialCache::new();
        let stats = connect_serial(&mut blocks, &bad_order, &[], &mut cache);
        assert!(stats.orphans > 0);
    }
}
