//! Inverse-map acceleration structures: DCF3D's auxiliary Cartesian maps.
//!
//! DCF3D seeds its stencil-walk donor searches from auxiliary Cartesian
//! "inverse maps" instead of cold-starting every walk from the middle of the
//! grid. This module reproduces that layer for one block:
//!
//! * a **seed lattice** — a uniform Cartesian bin grid over the block's
//!   owned bounding box mapping each bin to a nearby owned cell, so a cold
//!   donor search starts O(1) cells from the target instead of half a block
//!   away ([`InverseMap::query`] replaces `center_start`),
//! * a coarse **occupancy bitmask** ([`OCC_NB`]³ bins packed into
//!   `[u64; 8]`) broadcast with the bounding boxes, so request routing can
//!   prune ranks whose *box* contains a point but whose *cells* cannot
//!   (curved grids — an O-grid annulus most of whose bounding box is empty
//!   interior — generate exactly these false positives),
//! * per-solid **inside/outside/boundary ternary masks** over a hole
//!   lattice, so hole cutting runs the detailed containment test only for
//!   nodes in *boundary* bins (see [`classify_solids`]).
//!
//! The structure is rebuilt once per motion event (only for blocks whose
//! grid moved; static grids reuse it across steps) and its build is charged
//! to the virtual-time model like any other compute, so the acceleration is
//! visible — and honest — in the paper's virtual timings.
//!
//! Every pruning decision is *conservative*: occupancy bins are marked from
//! cell bounding boxes inflated past the walk's acceptance slack, and solid
//! masks only claim Inside/Outside when convexity proves it, so connectivity
//! results (donors, weights, blanking, orphans) are bit-identical with the
//! acceleration on or off. The `use_inverse_map` ablation tests assert this.

use crate::protocol::owned_bbox;
use overset_grid::curvilinear::Solid;
use overset_grid::index::Ijk;
use overset_grid::{Aabb, RigidTransform};
use overset_solver::Block;

/// Flops to bin one owned cell during the build (midpoint, bin index,
/// occupancy update).
pub const FLOPS_PER_CELL_BUILD: u64 = 12;
/// Flops to fill one empty bin from its nearest seeded neighbor.
pub const FLOPS_PER_BIN_FILL: u64 = 4;
/// Flops per seed query (three scaled subtractions + clamps).
pub const FLOPS_PER_QUERY: u64 = 10;
/// Flops for the bounding-box rejection of one (solid, hole-lattice bin).
pub const FLOPS_PER_BIN_BBOX: u64 = 6;
/// Flops per convexity-based containment probe of a hole-lattice bin corner
/// (same primitive as the hole cutter's detailed per-node test).
pub const FLOPS_PER_SOLID_PROBE: u64 = 25;
/// Flops per seed query through a non-identity pose (inverse rigid
/// transform — quaternion rotate — on top of the lattice binning).
pub const FLOPS_PER_POSED_QUERY: u64 = 40;
/// Flops for one incremental pose advance: transform composition, inverse,
/// and the 8-corner world-bounds check. Charged instead of a full rebuild.
pub const FLOPS_PER_INCR_UPDATE: u64 = 200;
/// An incremental advance is rejected (forcing a full rebuild) when the
/// world-frame enclosing box of the rotated lattice grows past this factor
/// of the lattice diagonal. Pure translations never grow the box; the
/// factor corresponds to roughly 3 degrees of accumulated rotation.
pub const INCR_MAX_DIAG_GROWTH: f64 = 1.05;

/// Fine-lattice resolution cap per axis (bins, not nodes).
const MAX_FINE_BINS: usize = 48;
/// Hole-lattice resolution cap per axis. Deliberately coarse: the win is
/// skipping per-node detailed tests for whole bins, so bins must hold many
/// nodes for classification to pay for itself.
const MAX_HOLE_BINS: usize = 8;
/// Coarse occupancy resolution per axis: [`OCC_NB`]³ = 512 bins = `[u64; 8]`.
pub const OCC_NB: usize = 8;

/// Occupancy bitmask words per rank ([`OCC_NB`]³ bins / 64 bits).
pub const OCC_WORDS: usize = OCC_NB * OCC_NB * OCC_NB / 64;

/// Ternary classification of one hole-lattice bin against one solid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinClass {
    /// No point of the bin can be inside the solid's padded bounding box:
    /// the detailed containment test is skipped entirely (same skip the
    /// unmasked cutter's per-node bbox pre-check would take).
    Outside,
    /// Every point of the bin is inside the solid at zero pad (convexity of
    /// the bin corners); any non-negative per-node pad can only blank more.
    Inside,
    /// Neither bound holds: run the full per-node test.
    Boundary,
}

/// Per-block inverse map: seed lattice + coarse occupancy + hole lattice.
#[derive(Clone, Debug)]
pub struct InverseMap {
    /// Physical bounds of every lattice: the block's owned bbox plus one
    /// halo layer (identical to the broadcast routing box, so occupancy
    /// bins computed by *other* ranks from the broadcast box line up with
    /// the bins marked here).
    bounds: Aabb,
    /// Fine-lattice bins per axis (≥ 1; 1 in k for 2-D blocks).
    nb: [usize; 3],
    /// Seed cell (local indices) per fine bin, bin-major (i fastest).
    seeds: Vec<Ijk>,
    /// Coarse occupancy: bit set ⇔ some owned-anchored cell's (inflated)
    /// bounding box overlaps the bin.
    occupancy: [u64; OCC_WORDS],
    /// Hole-lattice bins per axis for [`classify_solids`].
    hole_nb: [usize; 3],
    /// Flops spent building (the caller charges them to virtual time).
    build_flops: u64,
    /// Cumulative rigid motion of the block since this map was built
    /// (lattice frame → current world frame). Identity right after a
    /// build; composed by [`InverseMap::advance`] on incremental updates.
    pose: RigidTransform,
    /// Precomputed inverse of `pose` (world frame → lattice frame), applied
    /// to every query point before binning.
    inv_pose: RigidTransform,
}

/// Bin index of `x` on a `nb`-bin axis spanning `[lo, hi]`, clamped into
/// range (queries slightly outside the box land in an edge bin).
#[inline]
fn axis_bin(x: f64, lo: f64, hi: f64, nb: usize) -> usize {
    if nb <= 1 || hi <= lo {
        return 0;
    }
    let t = (x - lo) / (hi - lo) * nb as f64;
    (t.floor().max(0.0) as usize).min(nb - 1)
}

/// Hard per-axis bin ceiling of the adaptive allocation: a memory backstop
/// for pathological aspect ratios, far above anything the paper-scale cases
/// reach.
const MAX_AXIS_BINS: usize = 512;

/// Aspect-adaptive fine-lattice resolution: distribute the flat-cap bin
/// budget ([`MAX_FINE_BINS`] per active axis, i.e. 48³ in 3-D / 48² in 2-D)
/// across the axes in proportion to the block's physical extent — equal
/// bin *edge length* on every axis — then clamp each axis independently to
/// `[1, cells_d]` (and the [`MAX_AXIS_BINS`] backstop). A physically
/// stretched block (long chordwise, thin wall-normal) concentrates its bins
/// where its cells are; an isotropic block, or a curvilinear ring whose
/// bounding box is square, reproduces the old flat cap exactly. Clamped
/// axes do *not* hand their unused share to the others: the lattice is
/// Cartesian in physical space, so an index-space cell count says nothing
/// about how much physical resolution the remaining axes can use.
/// Deterministic: a pure function of extents and cell counts.
fn fine_bins(ext: [f64; 3], cells: [usize; 3], two_d: bool) -> [usize; 3] {
    let naxes: usize = if two_d { 2 } else { 3 };
    let budget = (MAX_FINE_BINS as f64).powi(naxes as i32);
    let prod: f64 = ext.iter().take(naxes).map(|e| e.max(1e-300)).product();
    // nb_d = ext_d · s with s chosen so the active axes' product fills the
    // budget (before clamping).
    let s = (budget / prod).powf(1.0 / naxes as f64);
    let mut nb = [1usize; 3];
    for d in 0..naxes {
        let want = (ext[d].max(1e-300) * s).round().clamp(1.0, MAX_AXIS_BINS as f64) as usize;
        nb[d] = want.clamp(1, cells[d]);
    }
    nb
}

/// The corner nodes of the cell anchored at `cell` (4 in 2-D, 8 in 3-D).
fn cell_corners(block: &Block, cell: Ijk) -> impl Iterator<Item = Ijk> + '_ {
    let kmax = if block.two_d { 1 } else { 2 };
    (0..kmax).flat_map(move |dk| {
        (0..2).flat_map(move |dj| {
            (0..2).map(move |di| Ijk::new(cell.i + di, cell.j + dj, cell.k + dk))
        })
    })
}

impl InverseMap {
    /// Build the map for a block's current geometry. Deterministic: the
    /// same block produces bit-identical seeds and occupancy.
    pub fn build(block: &Block) -> InverseMap {
        let bounds = owned_bbox(block);
        let ow = block.owned_local();
        let cells_i = (ow.hi.i - ow.lo.i).max(1);
        let cells_j = (ow.hi.j - ow.lo.j).max(1);
        let cells_k = if block.two_d { 1 } else { (ow.hi.k - ow.lo.k).max(1) };
        let nb = fine_bins(bounds.extent(), [cells_i, cells_j, cells_k], block.two_d);
        Self::build_with_bins(block, nb)
    }

    /// Build with an explicit fine-lattice resolution (tests compare the
    /// adaptive allocation against the old flat cap through this).
    fn build_with_bins(block: &Block, nb: [usize; 3]) -> InverseMap {
        let bounds = owned_bbox(block);
        let ow = block.owned_local();
        let hole_nb =
            [nb[0].min(MAX_HOLE_BINS), nb[1].min(MAX_HOLE_BINS), nb[2].min(MAX_HOLE_BINS)];
        let nbins = nb[0] * nb[1] * nb[2];
        let mut seeds: Vec<Option<Ijk>> = vec![None; nbins];
        let mut occupancy = [0u64; OCC_WORDS];
        let mut build_flops = 0u64;

        // Acceptance slack: the walk accepts trilinear coordinates in
        // [-TOL, 1+TOL] and Newton can accept before full convergence, so
        // occupancy marks each cell's bounding box inflated well past that
        // slack — pruning must never drop a rank that could answer.
        let diag_eps = 1e-9 * bounds.diagonal().max(1.0);

        let kmax_anchor = if block.two_d { ow.lo.k + 1 } else { ow.hi.k };
        for k in ow.lo.k..kmax_anchor {
            for j in ow.lo.j..ow.hi.j {
                for i in ow.lo.i..ow.hi.i {
                    // Cells are anchored at their lower-corner node; the far
                    // corner must exist in local storage.
                    if i + 1 >= block.local_dims.ni
                        || j + 1 >= block.local_dims.nj
                        || (!block.two_d && k + 1 >= block.local_dims.nk)
                    {
                        continue;
                    }
                    let cell = Ijk::new(i, j, k);
                    build_flops += FLOPS_PER_CELL_BUILD;
                    let mut cb = Aabb::EMPTY;
                    for n in cell_corners(block, cell) {
                        cb.include(block.coords[n]);
                    }
                    // Seed the fine bin holding the cell midpoint
                    // (first-write-wins; the row-major sweep is
                    // deterministic).
                    let mid = cb.center();
                    let b = self::bin_index(&bounds, nb, mid);
                    if seeds[b].is_none() {
                        seeds[b] = Some(cell);
                    }
                    // Conservative occupancy: the cell box inflated by an
                    // eighth of its own extent plus a global epsilon.
                    let e = cb.extent();
                    let pad = 0.125 * e[0].max(e[1]).max(e[2]) + diag_eps;
                    mark_occupancy(&mut occupancy, &bounds, &cb.inflate(pad));
                }
            }
        }

        // Fill empty bins from their nearest seeded neighbor (rings of
        // growing Chebyshev radius; deterministic scan order). Bins far from
        // any cell — the hollow middle of an annulus — still answer with
        // the closest real cell, which is exactly the right walk start.
        let filled: Vec<(usize, Ijk)> =
            seeds.iter().enumerate().filter_map(|(b, s)| s.map(|c| (b, c))).collect();
        if !filled.is_empty() {
            for (b, seed) in seeds.iter_mut().enumerate() {
                if seed.is_some() {
                    continue;
                }
                build_flops += FLOPS_PER_BIN_FILL;
                let (bi, bj, bk) = unflatten(b, nb);
                let mut best: Option<(usize, Ijk)> = None;
                for &(fb, cell) in &filled {
                    let (fi, fj, fk) = unflatten(fb, nb);
                    let d = fi.abs_diff(bi).max(fj.abs_diff(bj)).max(fk.abs_diff(bk));
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, cell));
                    }
                }
                *seed = best.map(|(_, c)| c);
            }
        }

        // A block with no owned cells (degenerate slivers) still gets a
        // valid map: every query answers the owned-region corner.
        let fallback = Ijk::new(ow.lo.i, ow.lo.j, ow.lo.k);
        let seeds: Vec<Ijk> = seeds.into_iter().map(|s| s.unwrap_or(fallback)).collect();

        InverseMap {
            bounds,
            nb,
            seeds,
            occupancy,
            hole_nb,
            build_flops,
            pose: RigidTransform::IDENTITY,
            inv_pose: RigidTransform::IDENTITY,
        }
    }

    /// Try to track a rigid motion of the block *without* rebuilding: the
    /// lattice keeps its build-time geometry and accumulates the motion as
    /// a pose; queries map world points back into the lattice frame through
    /// the inverse pose. The rigidly-moved cells sit exactly where the
    /// lattice (viewed through the pose) says they are, so seed answers
    /// stay as sharp as on the build step.
    ///
    /// Returns `false` — leaving the map untouched — when the accumulated
    /// rotation would inflate the world-frame enclosing box past
    /// [`INCR_MAX_DIAG_GROWTH`]; the caller must then rebuild from scratch.
    /// On success the caller charges [`FLOPS_PER_INCR_UPDATE`] to virtual
    /// time instead of a full build.
    pub fn advance(&mut self, t: &RigidTransform) -> bool {
        let pose = if self.pose.is_identity() { *t } else { self.pose.then(t) };
        let world = posed_bounds(&self.bounds, &pose);
        if world.diagonal() > self.bounds.diagonal().max(1e-300) * INCR_MAX_DIAG_GROWTH {
            return false;
        }
        self.inv_pose = pose.inverse();
        self.pose = pose;
        true
    }

    /// Is the map posed at its build-time geometry (no accumulated motion)?
    pub fn pose_is_identity(&self) -> bool {
        self.pose.is_identity()
    }

    /// The accumulated pose (lattice frame → world frame).
    pub fn pose(&self) -> &RigidTransform {
        &self.pose
    }

    /// The inverse pose (world frame → lattice frame), as broadcast to
    /// other ranks for posed occupancy binning.
    pub fn inv_pose(&self) -> &RigidTransform {
        &self.inv_pose
    }

    /// World-frame routing box: the lattice bounds carried through the
    /// pose. Bit-identical to [`InverseMap::bounds`] while the pose is the
    /// identity; a conservative enclosing box of the rotated lattice
    /// otherwise.
    pub fn world_bounds(&self) -> Aabb {
        if self.pose.is_identity() {
            self.bounds
        } else {
            posed_bounds(&self.bounds, &self.pose)
        }
    }

    /// Flops one seed query costs at the current pose (posed queries pay
    /// for the inverse transform). Deterministic — a pure function of the
    /// map's state, never of the host.
    pub fn query_flops(&self) -> u64 {
        if self.pose.is_identity() {
            FLOPS_PER_QUERY
        } else {
            FLOPS_PER_POSED_QUERY
        }
    }

    /// Physical bounds of the lattices (the broadcast routing box).
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Flops spent by [`InverseMap::build`]; charge them to virtual time.
    pub fn build_flops(&self) -> u64 {
        self.build_flops
    }

    /// Coarse occupancy words, ready for the topology allgather.
    pub fn occupancy(&self) -> [u64; OCC_WORDS] {
        self.occupancy
    }

    /// O(1) walk seed for a target point: the seed cell of the fine bin
    /// holding `p` (points outside the bounds clamp into an edge bin).
    /// Under a non-identity pose the point is first mapped back into the
    /// lattice frame; the identity path is byte-for-byte the legacy one.
    pub fn query(&self, p: [f64; 3]) -> Ijk {
        let q = if self.pose.is_identity() { p } else { self.inv_pose.apply(p) };
        self.seeds[bin_index(&self.bounds, self.nb, q)]
    }

    /// Hole-lattice bin index of a node coordinate (used with the classes
    /// from [`classify_solids`]). Lattice-frame only: hole classification
    /// is gated on an identity pose (see `holes.rs`), so no inverse
    /// transform is applied here.
    pub fn hole_bin(&self, p: [f64; 3]) -> usize {
        bin_index(&self.bounds, self.hole_nb, p)
    }

    /// Number of hole-lattice bins.
    pub fn hole_bins(&self) -> usize {
        self.hole_nb[0] * self.hole_nb[1] * self.hole_nb[2]
    }

    /// Physical box of one hole-lattice bin.
    fn hole_bin_box(&self, b: usize) -> Aabb {
        let (bi, bj, bk) = unflatten(b, self.hole_nb);
        let ext = self.bounds.extent();
        let f = |lo: f64, e: f64, n: usize, i: usize| -> (f64, f64) {
            if n <= 1 {
                (lo, lo + e)
            } else {
                let w = e / n as f64;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
        };
        let (x0, x1) = f(self.bounds.min[0], ext[0], self.hole_nb[0], bi);
        let (y0, y1) = f(self.bounds.min[1], ext[1], self.hole_nb[1], bj);
        let (z0, z1) = f(self.bounds.min[2], ext[2], self.hole_nb[2], bk);
        Aabb::new([x0, y0, z0], [x1, y1, z1])
    }
}

/// Flattened fine/hole-lattice bin index of a point (row-major, i fastest).
fn bin_index(bounds: &Aabb, nb: [usize; 3], p: [f64; 3]) -> usize {
    let bi = axis_bin(p[0], bounds.min[0], bounds.max[0], nb[0]);
    let bj = axis_bin(p[1], bounds.min[1], bounds.max[1], nb[1]);
    let bk = axis_bin(p[2], bounds.min[2], bounds.max[2], nb[2]);
    (bk * nb[1] + bj) * nb[0] + bi
}

fn unflatten(b: usize, nb: [usize; 3]) -> (usize, usize, usize) {
    let bi = b % nb[0];
    let bj = (b / nb[0]) % nb[1];
    let bk = b / (nb[0] * nb[1]);
    (bi, bj, bk)
}

/// Set every coarse occupancy bit whose bin overlaps `cell_box`.
fn mark_occupancy(occ: &mut [u64; OCC_WORDS], bounds: &Aabb, cell_box: &Aabb) {
    let ext = bounds.extent();
    let range = |d: usize| -> (usize, usize) {
        if ext[d] <= 0.0 {
            return (0, OCC_NB - 1);
        }
        let lo = axis_bin(cell_box.min[d], bounds.min[d], bounds.max[d], OCC_NB);
        let hi = axis_bin(cell_box.max[d], bounds.min[d], bounds.max[d], OCC_NB);
        (lo, hi)
    };
    let (i0, i1) = range(0);
    let (j0, j1) = range(1);
    let (k0, k1) = range(2);
    for k in k0..=k1 {
        for j in j0..=j1 {
            for i in i0..=i1 {
                let bit = (k * OCC_NB + j) * OCC_NB + i;
                occ[bit / 64] |= 1u64 << (bit % 64);
            }
        }
    }
}

/// Enclosing world-frame box of `bounds` carried through `pose`: the AABB
/// of the 8 transformed corners. Conservative for every interior point
/// (rigid maps are affine).
fn posed_bounds(bounds: &Aabb, pose: &RigidTransform) -> Aabb {
    let mut world = Aabb::EMPTY;
    for ci in 0..8 {
        let c = [
            if ci & 1 == 0 { bounds.min[0] } else { bounds.max[0] },
            if ci & 2 == 0 { bounds.min[1] } else { bounds.max[1] },
            if ci & 4 == 0 { bounds.min[2] } else { bounds.max[2] },
        ];
        world.include(pose.apply(c));
    }
    world
}

/// Posed variant of [`occupancy_admits`] for the receive side of the
/// routing broadcast: map the world point into the sender's lattice frame
/// through its broadcast inverse pose, then test against the *lattice* box
/// the occupancy bits were marked in. The identity path is bit-identical
/// to [`occupancy_admits`].
pub fn occupancy_admits_posed(
    occ: &[u64; OCC_WORDS],
    lat_box: &Aabb,
    inv_pose: &RigidTransform,
    p: [f64; 3],
) -> bool {
    let q = if inv_pose.is_identity() { p } else { inv_pose.apply(p) };
    occupancy_admits(occ, lat_box, q)
}

/// Does the occupancy mask (broadcast alongside `rank_box`) admit `p`?
/// All-ones masks (ranks running without a map) admit everything.
pub fn occupancy_admits(occ: &[u64; OCC_WORDS], rank_box: &Aabb, p: [f64; 3]) -> bool {
    let bi = axis_bin(p[0], rank_box.min[0], rank_box.max[0], OCC_NB);
    let bj = axis_bin(p[1], rank_box.min[1], rank_box.max[1], OCC_NB);
    let bk = axis_bin(p[2], rank_box.min[2], rank_box.max[2], OCC_NB);
    let bit = (bk * OCC_NB + bj) * OCC_NB + bi;
    occ[bit / 64] & (1u64 << (bit % 64)) != 0
}

/// The all-ones occupancy mask: what a rank broadcasts when it runs without
/// an inverse map (admits every point — pruning disabled).
pub const OCC_ALL: [u64; OCC_WORDS] = [u64::MAX; OCC_WORDS];

/// Classify every hole-lattice bin of `inv` against each solid in `solids`
/// (one `Vec<BinClass>` per solid, bin-major). `pad_hint` must be the same
/// padded-bbox inflation the unmasked cutter uses, so an `Outside` verdict
/// reproduces its bounding-box rejection exactly. Returns the classes and
/// the flops spent.
pub fn classify_solids(
    inv: &InverseMap,
    solids: &[&Solid],
    pad_hint: f64,
) -> (Vec<Vec<BinClass>>, u64) {
    let owned: Vec<Solid> = solids.iter().map(|s| **s).collect();
    let mut classes = Vec::new();
    let flops = classify_solids_into(inv, &owned, pad_hint, &mut classes);
    (classes, flops)
}

/// [`classify_solids`] writing into caller-owned storage: the outer vector
/// is resized to the solid count and the inner per-bin vectors keep their
/// capacity, so a steady-state re-classification allocates nothing.
pub fn classify_solids_into(
    inv: &InverseMap,
    solids: &[Solid],
    pad_hint: f64,
    classes: &mut Vec<Vec<BinClass>>,
) -> u64 {
    let nbins = inv.hole_bins();
    let mut flops = 0u64;
    classes.truncate(solids.len());
    while classes.len() < solids.len() {
        classes.push(Vec::new());
    }
    for (s, per_bin) in solids.iter().zip(classes.iter_mut()) {
        let padded = s.bbox().inflate(pad_hint);
        per_bin.clear();
        for b in 0..nbins {
            flops += FLOPS_PER_BIN_BBOX;
            let bb = inv.hole_bin_box(b);
            if !bb.intersects(&padded) {
                per_bin.push(BinClass::Outside);
                continue;
            }
            // Inside needs every corner (and the center, to guard the
            // degenerate flat bins of 2-D blocks) contained at zero pad;
            // every solid shape is convex, so the whole bin follows.
            let mut probes = 1u64;
            let mut inside = s.contains(bb.center(), 0.0);
            if inside {
                'corners: for ci in 0..8 {
                    let c = [
                        if ci & 1 == 0 { bb.min[0] } else { bb.max[0] },
                        if ci & 2 == 0 { bb.min[1] } else { bb.max[1] },
                        if ci & 4 == 0 { bb.min[2] } else { bb.max[2] },
                    ];
                    probes += 1;
                    if !s.contains(c, 0.0) {
                        inside = false;
                        break 'corners;
                    }
                }
            }
            flops += probes * FLOPS_PER_SOLID_PROBE;
            per_bin.push(if inside { BinClass::Inside } else { BinClass::Boundary });
        }
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::donor::{walk_search, SearchCost, SearchOutcome};
    use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
    use overset_grid::field::Field3;
    use overset_grid::index::Dims;
    use overset_solver::FlowConditions;

    fn cart_block(n: usize, h: f64) -> Block {
        let d = Dims::new(n, n, n);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * h, p.j as f64 * h, p.k as f64 * h]);
        let g = CurvilinearGrid::new("c", coords, GridKind::Background);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &fc)
    }

    fn annulus_block(nth: usize, nr: usize) -> Block {
        annulus_block_from(nth, nr, 1.0)
    }

    fn annulus_block_from(nth: usize, nr: usize, r0: f64) -> Block {
        let d = Dims::new(nth, nr, 1);
        let coords = Field3::from_fn(d, |p| {
            let th = -2.0 * std::f64::consts::PI * (p.i % (nth - 1)) as f64 / (nth - 1) as f64;
            let r = r0 + 0.25 * p.j as f64;
            [r * th.cos(), r * th.sin(), 0.0]
        });
        let mut g = CurvilinearGrid::new("a", coords, GridKind::NearBody);
        g.periodic_i = true;
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &fc)
    }

    #[test]
    fn query_seeds_land_one_step_from_the_target() {
        let b = cart_block(17, 0.25);
        let inv = InverseMap::build(&b);
        assert!(inv.build_flops() > 0);
        // Every interior cell midpoint must be found from its seed in very
        // few walk steps (the whole point of the map).
        for (i, j, k) in [(2usize, 3usize, 4usize), (15, 1, 8), (8, 14, 2)] {
            let target =
                [(i as f64 + 0.5) * 0.25, (j as f64 + 0.5) * 0.25, (k as f64 + 0.5) * 0.25];
            let mut cost = SearchCost::default();
            match walk_search(&b, target, inv.query(target), &mut cost) {
                SearchOutcome::Found(d) => {
                    assert_eq!(b.to_global(d.cell), Ijk::new(i, j, k));
                }
                o => panic!("expected Found, got {o:?}"),
            }
            assert!(cost.walk_steps <= 2, "walk from seed took {} steps", cost.walk_steps);
        }
    }

    #[test]
    fn seeded_walk_is_cheaper_than_center_start() {
        let b = cart_block(33, 0.125);
        let inv = InverseMap::build(&b);
        let target = [0.3, 3.8, 0.2];
        let mut cold = SearchCost::default();
        walk_search(&b, target, crate::donor::center_start(&b), &mut cold);
        let mut seeded = SearchCost::default();
        walk_search(&b, target, inv.query(target), &mut seeded);
        assert!(
            seeded.flops() < cold.flops(),
            "seeded {} vs cold {}",
            seeded.flops(),
            cold.flops()
        );
    }

    /// A physically stretched 2-D block — the wake/boundary-layer shape of
    /// the airfoil system: long in x, thin in y.
    fn stretched_block(nx: usize, ny: usize, hx: f64, hy: f64) -> Block {
        let d = Dims::new(nx, ny, 1);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * hx, p.j as f64 * hy, 0.0]);
        let g = CurvilinearGrid::new("w", coords, GridKind::Background);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        Block::from_grid(0, &g, d.full_box(), [None; 6], &fc)
    }

    #[test]
    fn high_aspect_block_walks_fewer_steps_with_identical_donors() {
        // Aspect 16:1 — under the flat 48/axis cap every x-bin held > 5
        // cells while the y-bins were finer than the cells; proportional
        // allocation moves that wasted y budget onto x.
        let b = stretched_block(257, 17, 0.05, 0.05);
        let adaptive = InverseMap::build(&b);
        assert!(
            adaptive.nb[0] > MAX_FINE_BINS,
            "long axis should outgrow the old flat cap, got {:?}",
            adaptive.nb
        );
        assert!(adaptive.nb[1] < 17, "thin axis should give up bins: {:?}", adaptive.nb);
        // Exactly what the old flat per-axis cap produced for this block.
        let flat = InverseMap::build_with_bins(&b, [MAX_FINE_BINS, 17, 1]);
        let (mut adaptive_steps, mut flat_steps) = (0u64, 0u64);
        for q in 0..500 {
            // Generic interior points (off any cell face) along the block.
            let x = 0.13 + (q as f64 * 0.0251) % 12.5;
            let y = 0.03 + (q as f64 * 0.0173) % 0.75;
            let p = [x, y, 0.0];
            let mut ca = SearchCost::default();
            let oa = walk_search(&b, p, adaptive.query(p), &mut ca);
            let mut cf = SearchCost::default();
            let of = walk_search(&b, p, flat.query(p), &mut cf);
            assert!(matches!(oa, SearchOutcome::Found(_)), "lost a donor at {p:?}: {oa:?}");
            assert_eq!(oa, of, "donor must not depend on the seed lattice at {p:?}");
            adaptive_steps += ca.walk_steps;
            flat_steps += cf.walk_steps;
        }
        assert!(
            adaptive_steps < flat_steps,
            "adaptive lattice should walk less: {adaptive_steps} vs flat {flat_steps}"
        );
        // A curvilinear ring's bounding box is square: the adaptive
        // allocation must reproduce the old flat cap exactly there (no
        // regression on O-grids — extent proportionality is physical, not
        // index-space).
        let ring = InverseMap::build(&annulus_block_from(257, 3, 2.5));
        assert_eq!(ring.nb, [MAX_FINE_BINS, 3, 1]);
    }

    #[test]
    fn occupancy_admits_every_contained_point_and_prunes_the_annulus_hollow() {
        // Thin annulus r ∈ [2.5, 3]: most of its bounding box is hollow —
        // the false-positive shape occupancy pruning exists for.
        let b = annulus_block_from(65, 3, 2.5);
        let inv = InverseMap::build(&b);
        let occ = inv.occupancy();
        let bounds = inv.bounds();
        // Any point actually inside some cell must be admitted
        // (conservativeness: pruning never loses a donor).
        for (r, th_deg) in [(2.55, 13.0), (2.7, 250.0), (2.9, 117.0), (2.95, 359.0)] {
            let th = -f64::to_radians(th_deg);
            let p = [r * th.cos(), r * th.sin(), 0.0];
            assert!(occupancy_admits(&occ, &bounds, p), "pruned a real donor point {p:?}");
        }
        // The hollow center of the annulus is inside the bbox but holds no
        // cells: occupancy must prune it.
        assert!(bounds.contains([0.0, 0.0, 0.0]));
        assert!(!occupancy_admits(&occ, &bounds, [0.0, 0.0, 0.0]));
        // The all-ones mask admits everything.
        assert!(occupancy_admits(&OCC_ALL, &bounds, [0.0, 0.0, 0.0]));
    }

    #[test]
    fn annulus_queries_seed_near_the_target_angle() {
        let b = annulus_block(65, 9);
        let inv = InverseMap::build(&b);
        for th_deg in [10.0f64, 95.0, 181.0, 340.0] {
            let th = -th_deg.to_radians();
            let target = [1.6 * th.cos(), 1.6 * th.sin(), 0.0];
            let mut cost = SearchCost::default();
            match walk_search(&b, target, inv.query(target), &mut cost) {
                SearchOutcome::Found(_) => {}
                o => panic!("{th_deg} deg: {o:?}"),
            }
            assert!(cost.walk_steps <= 8, "{th_deg} deg took {} steps", cost.walk_steps);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let b = annulus_block(33, 7);
        let a = InverseMap::build(&b);
        let c = InverseMap::build(&b);
        assert_eq!(a.seeds, c.seeds);
        assert_eq!(a.occupancy, c.occupancy);
        assert_eq!(a.build_flops, c.build_flops);
    }

    #[test]
    fn pose_advance_tracks_translation_in_lattice_frame() {
        let b = cart_block(17, 0.25);
        let mut inv = InverseMap::build(&b);
        assert!(inv.pose_is_identity());
        assert_eq!(inv.query_flops(), FLOPS_PER_QUERY);
        // Probe at cell midpoints (bin interiors, robust to FP rounding).
        let probes: Vec<[f64; 3]> = [(2usize, 3usize, 4usize), (15, 1, 8), (8, 14, 2)]
            .iter()
            .map(|&(i, j, k)| {
                [(i as f64 + 0.5) * 0.25, (j as f64 + 0.5) * 0.25, (k as f64 + 0.5) * 0.25]
            })
            .collect();
        let legacy: Vec<Ijk> = probes.iter().map(|&p| inv.query(p)).collect();
        let bounds = inv.bounds();
        let shift = [3.0, -1.5, 0.75];
        assert!(inv.advance(&RigidTransform::translation(shift)));
        assert!(!inv.pose_is_identity());
        assert_eq!(inv.query_flops(), FLOPS_PER_POSED_QUERY);
        // A world point that moved with the block seeds the same cell the
        // unmoved point seeded before the advance.
        for (p, want) in probes.iter().zip(&legacy) {
            let moved = [p[0] + shift[0], p[1] + shift[1], p[2] + shift[2]];
            assert_eq!(inv.query(moved), *want);
        }
        // The routing box followed the motion; the lattice box did not.
        let wb = inv.world_bounds();
        for (d, sh) in shift.iter().enumerate() {
            assert!((wb.min[d] - (bounds.min[d] + sh)).abs() < 1e-12);
            assert!((wb.max[d] - (bounds.max[d] + sh)).abs() < 1e-12);
        }
        assert_eq!(inv.bounds().min, bounds.min);
    }

    #[test]
    fn pose_advance_rejects_large_rotation_and_leaves_map_untouched() {
        let b = cart_block(17, 0.25);
        let mut inv = InverseMap::build(&b);
        let big = RigidTransform::rotation_about(
            inv.bounds().center(),
            [0.0, 0.0, 1.0],
            f64::to_radians(10.0),
        );
        assert!(!inv.advance(&big));
        assert!(inv.pose_is_identity());
        assert_eq!(inv.world_bounds().min, inv.bounds().min);
    }

    #[test]
    fn pose_accumulates_small_rotations_until_growth_threshold() {
        let b = cart_block(17, 0.25);
        let mut inv = InverseMap::build(&b);
        let step = RigidTransform::rotation_about(
            inv.bounds().center(),
            [0.0, 0.0, 1.0],
            f64::to_radians(1.0),
        );
        let mut accepted = 0;
        while inv.advance(&step) {
            accepted += 1;
            assert!(accepted < 90, "growth threshold never tripped");
        }
        // A cube trips the 5% diagonal-growth threshold near 5 degrees.
        assert!((2..=8).contains(&accepted), "accepted {accepted} one-degree steps");
        // After rejection the pose still holds the last accepted rotation.
        assert!(!inv.pose_is_identity());
    }

    #[test]
    fn posed_occupancy_matches_identity_path_and_tracks_motion() {
        let b = annulus_block_from(65, 3, 2.5);
        let mut inv = InverseMap::build(&b);
        let occ = inv.occupancy();
        let bounds = inv.bounds();
        let id = RigidTransform::IDENTITY;
        for (r, th_deg) in [(2.55, 13.0), (2.9, 117.0)] {
            let th = -f64::to_radians(th_deg);
            let p = [r * th.cos(), r * th.sin(), 0.0];
            assert_eq!(
                occupancy_admits_posed(&occ, &bounds, &id, p),
                occupancy_admits(&occ, &bounds, p)
            );
        }
        // Translate the annulus far from the origin: the hollow center
        // moves with it, and the posed test must follow.
        let shift = [100.0, 0.0, 0.0];
        assert!(inv.advance(&RigidTransform::translation(shift)));
        let inv_pose = *inv.inv_pose();
        assert!(!occupancy_admits_posed(&occ, &bounds, &inv_pose, [100.0, 0.0, 0.0]));
        let th = -f64::to_radians(13.0);
        let p = [100.0 + 2.55 * th.cos(), 2.55 * th.sin(), 0.0];
        assert!(occupancy_admits_posed(&occ, &bounds, &inv_pose, p));
    }

    #[test]
    fn solid_classification_is_consistent_with_brute_force() {
        let b = cart_block(21, 0.2); // covers [0,4]^3
        let inv = InverseMap::build(&b);
        let solid = Solid::Ellipsoid { center: [2.0, 2.0, 2.0], radii: [1.3, 1.1, 1.2] };
        let (classes, flops) = classify_solids(&inv, &[&solid], 0.1);
        assert!(flops > 0);
        let classes = &classes[0];
        let mut counts = [0usize; 3];
        for (bin, cls) in classes.iter().enumerate() {
            let bb = inv.hole_bin_box(bin);
            counts[match cls {
                BinClass::Outside => 0,
                BinClass::Inside => 1,
                BinClass::Boundary => 2,
            }] += 1;
            // Probe a grid of points in the bin; Inside bins must contain
            // all of them (pad 0) and Outside bins must reject all of them
            // even with the per-node pad bound.
            for pi in 0..3 {
                for pj in 0..3 {
                    for pk in 0..3 {
                        let p = [
                            bb.min[0] + (bb.max[0] - bb.min[0]) * pi as f64 / 2.0,
                            bb.min[1] + (bb.max[1] - bb.min[1]) * pj as f64 / 2.0,
                            bb.min[2] + (bb.max[2] - bb.min[2]) * pk as f64 / 2.0,
                        ];
                        match cls {
                            BinClass::Inside => assert!(solid.contains(p, 0.0), "{p:?}"),
                            BinClass::Outside => {
                                assert!(!solid.bbox().inflate(0.1).contains(p), "{p:?}")
                            }
                            BinClass::Boundary => {}
                        }
                    }
                }
            }
        }
        // A solid well inside the block yields all three classes.
        assert!(counts[0] > 0 && counts[1] > 0 && counts[2] > 0, "{counts:?}");
    }

    #[test]
    fn two_d_block_map_works() {
        let d = Dims::new(11, 11, 1);
        let coords = Field3::from_fn(d, |p| [p.i as f64 * 0.3, p.j as f64 * 0.3, 0.0]);
        let g = CurvilinearGrid::new("p", coords, GridKind::Background);
        let fc = FlowConditions::new(0.8, 0.0, 0.0);
        let b = Block::from_grid(0, &g, d.full_box(), [None; 6], &fc);
        let inv = InverseMap::build(&b);
        let target = [1.0, 2.0, 0.0];
        let mut cost = SearchCost::default();
        match walk_search(&b, target, inv.query(target), &mut cost) {
            SearchOutcome::Found(dn) => assert_eq!(b.to_global(dn.cell), Ijk::new(3, 6, 0)),
            o => panic!("{o:?}"),
        }
        assert!(cost.walk_steps <= 2);
    }
}
