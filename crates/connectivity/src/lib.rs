//! Domain connectivity for dynamic overset grids — the DCF3D analogue of
//! the OVERFLOW-D reproduction.
//!
//! Moving-grid simulations must re-establish intergrid connectivity at every
//! timestep: cut holes where grids intersect solid surfaces, identify the
//! inter-grid boundary points (IGBPs), search donor cells in overlapping
//! grids, and interpolate boundary values. This crate implements:
//!
//! * [`holes`] — analytic hole cutting and fringe/IGBP identification,
//! * [`donor`] — the stencil-walk donor search with Newton inversion of the
//!   trilinear cell map,
//! * [`inverse_map`] — DCF3D-style auxiliary Cartesian inverse maps: O(1)
//!   walk seeds, coarse occupancy masks for request pruning, and ternary
//!   solid masks for masked hole cutting,
//! * [`interp`] — trilinear interpolation of the conserved state,
//! * [`serial`] — the single-address-space connectivity solution (Y-MP
//!   baseline and validation reference),
//! * [`protocol`] — the distributed donor-search protocol (bounding-box
//!   routing, asynchronous request service, candidate forwarding, and the
//!   "nth-level restart" donor cache).

//! * [`kernels`] — lane-batched (SIMD) forms of the trilinear Newton
//!   inversion and the hole cutter's containment tests, bit-identical to
//!   the scalar code per lane.

pub mod arena;
pub mod donor;
pub mod holes;
pub mod interp;
pub mod inverse_map;
pub mod kernels;
pub mod protocol;
pub mod serial;

pub use arena::ConnArena;
pub use donor::{
    walk_search, walk_search_batch, walk_search_isa, BatchQuery, Donor, SearchCost, SearchOutcome,
};
pub use holes::{
    cut_holes_and_find_fringe, cut_holes_and_find_fringe_arena, cut_holes_and_find_fringe_with_map,
    Igbp,
};
pub use interp::{interpolate, weights};
pub use inverse_map::{
    classify_solids_into, occupancy_admits, occupancy_admits_posed, BinClass, InverseMap,
    FLOPS_PER_INCR_UPDATE, OCC_ALL, OCC_WORDS,
};
pub use protocol::{
    connect_distributed, connect_distributed_arena, connect_distributed_with_map, ConnStats,
    DonorCache, Topology,
};
pub use serial::{
    connect_serial, connect_serial_arena, connect_serial_with_maps, SerialCache, SerialConnStats,
};
