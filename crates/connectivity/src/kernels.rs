//! Lane-batched connectivity kernels: trilinear Newton inversion and
//! solid-containment tests.
//!
//! Both kernels batch up to [`W`] *independent* scalar problems — one
//! candidate cell (or one pending query point) per SIMD lane for the
//! Newton inversion, one node per lane for the containment tests — and
//! perform on each lane exactly the operation sequence of the scalar code
//! in [`crate::donor`] / [`crate::holes`]. Only vertical per-lane
//! `add/sub/mul/div/abs` and comparisons are used (no horizontal
//! reductions, no FMA), so every lane's result is bit-identical to the
//! scalar reference: donors, walk outcomes, blanking verdicts and the
//! flop charges derived from them do not depend on the selected
//! [`Isa`]. The `--no-simd` ablation and the batched-vs-scalar proptests
//! pin this.
//!
//! Dispatch reuses the solver's exported [`overset_solver::lane_kernel!`]
//! macro: one generic body, monomorphized to `[f64; 4]` scalar lanes or to
//! an `#[target_feature(enable = "avx2")]` AVX2 instantiation.

use overset_grid::curvilinear::Solid;
use overset_grid::Aabb;
use overset_solver::{lane_kernel, Lane4, W};

/// Number of corner slots a batched cell gathers (2×2×2 trilinear box).
pub const CORNERS: usize = 8;

/// Per-lane boolean from a comparison mask (sign-bit semantics, matching
/// AVX2 `blendv` and [`Lane4::select`]).
fn signs<M: Lane4>(m: M) -> [bool; W] {
    m.to_array().map(|v| v.to_bits() >> 63 == 1)
}

/// Scalar-order clamp on lanes: `if x < lo { lo } else if x > hi { hi }
/// else { x }` — the exact branch structure of `f64::clamp`, so NaN lanes
/// pass through unchanged just as they do in the scalar code.
fn clamp_lanes<M: Lane4>(x: M, lo: f64, hi: f64) -> M {
    let lo = M::splat(lo);
    let hi = M::splat(hi);
    M::select(x.lt(lo), lo, M::select(hi.lt(x), hi, x))
}

lane_kernel! {
    /// Newton inversion of `W` independent trilinear cell maps — the
    /// batched form of `donor::invert_cell`, one `(cell, target)` problem
    /// per lane. Every Newton step evaluates the trilinear map *and* its
    /// Jacobian for all lanes at once and performs the scalar 3×3
    /// Cramer solve per lane in the scalar operation order.
    ///
    /// Layouts: `corners[(cidx * 3 + m) * W + l]` holds component `m` of
    /// corner `cidx = di + 2·dj + 4·dk` for lane `l` (2-D blocks leave the
    /// `dk = 1` slots unread); `targets`/`t_out` hold component `m` of
    /// lane `l` at `m * W + l`.
    ///
    /// Per lane the iteration count, convergence and the singular-Jacobian
    /// early-out (`ok_out[l] = false`, mirroring the scalar `None`) follow
    /// the scalar control flow exactly: converged lanes freeze while the
    /// rest keep iterating, and a lane's `(t, iters)` never depends on
    /// which other problems share the batch.
    pub fn invert_cells_lanes<L>(
        two_d: bool,
        corners: &[f64],
        targets: &[f64],
        t_out: &mut [f64],
        iters_out: &mut [u64; W],
        ok_out: &mut [bool; W],
    ) {
        let one = L::splat(1.0);
        let zero = L::splat(0.0);
        let tgt = [
            L::load(&targets[0..W]),
            L::load(&targets[W..2 * W]),
            L::load(&targets[2 * W..3 * W]),
        ];
        let mut t = [L::splat(0.5), L::splat(0.5), if two_d { zero } else { L::splat(0.5) }];
        let mut done = [false; W];
        let mut ok = [true; W];
        let mut iters = [0u64; W];
        let kmax = if two_d { 1 } else { 2 };
        for _ in 0..8 {
            if done.iter().all(|&d| d) {
                break;
            }
            for (it, &d) in iters.iter_mut().zip(done.iter()) {
                if !d {
                    *it += 1;
                }
            }
            // Trilinear evaluation + Jacobian, corner loop in the scalar
            // (dk, dj, di) order with the scalar product association.
            let mut x = [zero; 3];
            let mut dx = [[zero; 3]; 3];
            for dk in 0..kmax {
                let wk = if two_d {
                    one
                } else if dk == 0 {
                    one.sub(t[2])
                } else {
                    t[2]
                };
                let gk = L::splat(if dk == 0 { -1.0 } else { 1.0 });
                for dj in 0..2 {
                    let wj = if dj == 0 { one.sub(t[1]) } else { t[1] };
                    let gj = L::splat(if dj == 0 { -1.0 } else { 1.0 });
                    for di in 0..2 {
                        let wi = if di == 0 { one.sub(t[0]) } else { t[0] };
                        let gi = L::splat(if di == 0 { -1.0 } else { 1.0 });
                        let w = wi.mul(wj).mul(wk);
                        let cidx = di + 2 * dj + 4 * dk;
                        for m in 0..3 {
                            let c = L::load(&corners[(cidx * 3 + m) * W..]);
                            x[m] = x[m].add(w.mul(c));
                            dx[0][m] = dx[0][m].add(gi.mul(wj).mul(wk).mul(c));
                            dx[1][m] = dx[1][m].add(wi.mul(gj).mul(wk).mul(c));
                            if !two_d {
                                dx[2][m] = dx[2][m].add(wi.mul(wj).mul(gk).mul(c));
                            }
                        }
                    }
                }
            }
            if two_d {
                dx[2] = [zero, zero, one];
            }
            let r = [tgt[0].sub(x[0]), tgt[1].sub(x[1]), tgt[2].sub(x[2])];
            let rn = r[0].mul(r[0]).add(r[1].mul(r[1])).add(r[2].mul(r[2]));
            // a[m][d] = dx[d][m]: the scalar J^T layout.
            let a = [
                [dx[0][0], dx[1][0], dx[2][0]],
                [dx[0][1], dx[1][1], dx[2][1]],
                [dx[0][2], dx[1][2], dx[2][2]],
            ];
            let det = a[0][0]
                .mul(a[1][1].mul(a[2][2]).sub(a[1][2].mul(a[2][1])))
                .sub(a[0][1].mul(a[1][0].mul(a[2][2]).sub(a[1][2].mul(a[2][0]))))
                .add(a[0][2].mul(a[1][0].mul(a[2][1]).sub(a[1][1].mul(a[2][0]))));
            let det_abs = det.abs().to_array();
            for l in 0..W {
                if !done[l] && det_abs[l] < 1e-300 {
                    ok[l] = false;
                    done[l] = true;
                }
            }
            let inv_det = one.div(det);
            let dt = [
                inv_det.mul(
                    r[0].mul(a[1][1].mul(a[2][2]).sub(a[1][2].mul(a[2][1])))
                        .sub(a[0][1].mul(r[1].mul(a[2][2]).sub(a[1][2].mul(r[2]))))
                        .add(a[0][2].mul(r[1].mul(a[2][1]).sub(a[1][1].mul(r[2])))),
                ),
                inv_det.mul(
                    a[0][0].mul(r[1].mul(a[2][2]).sub(a[1][2].mul(r[2])))
                        .sub(r[0].mul(a[1][0].mul(a[2][2]).sub(a[1][2].mul(a[2][0]))))
                        .add(a[0][2].mul(a[1][0].mul(r[2]).sub(r[1].mul(a[2][0])))),
                ),
                inv_det.mul(
                    a[0][0].mul(a[1][1].mul(r[2]).sub(r[1].mul(a[2][1])))
                        .sub(a[0][1].mul(a[1][0].mul(r[2]).sub(r[1].mul(a[2][0]))))
                        .add(r[0].mul(a[1][0].mul(a[2][1]).sub(a[1][1].mul(a[2][0])))),
                ),
            ];
            let mut nt = [t[0].add(dt[0]), t[1].add(dt[1]), t[2]];
            if !two_d {
                nt[2] = t[2].add(dt[2]);
            }
            for v in nt.iter_mut() {
                *v = clamp_lanes(*v, -3.0, 4.0);
            }
            // Freeze lanes that are already done (converged earlier, or
            // singular this very step — the scalar code returns before the
            // update in both cases, and a singular lane's t is unused).
            let keep = L::mask(done);
            for m in 0..3 {
                t[m] = L::select(keep, t[m], nt[m]);
            }
            let rn_a = rn.to_array();
            let sum_dt = dt[0].abs().add(dt[1].abs()).add(dt[2].abs()).to_array();
            for l in 0..W {
                if !done[l] && (rn_a[l] < 1e-16 || sum_dt[l] < 1e-8) {
                    done[l] = true;
                }
            }
        }
        for m in 0..3 {
            t[m].store(&mut t_out[m * W..]);
        }
        *iters_out = iters;
        *ok_out = ok;
    }
}

lane_kernel! {
    /// Batched point-in-bbox pre-check and solid containment test — the
    /// hole cutter's per-node verdicts for `W` nodes at once, one node per
    /// lane. `xs[m * W + l]` holds coordinate `m` of lane `l`; `pads[l]`
    /// the node's hole pad. `in_box[l]` reproduces
    /// `bb.contains(x)` and `inside[l]` reproduces `solid.contains(x, pad)`
    /// exactly: all verdicts come from comparisons of identically-computed
    /// values, so blanking cannot depend on the `Isa` carrying them.
    pub fn containment_lanes<L>(
        solid: &Solid,
        bb: &Aabb,
        xs: &[f64],
        pads: &[f64],
        in_box: &mut [bool; W],
        inside: &mut [bool; W],
    ) {
        let x = [L::load(&xs[0..W]), L::load(&xs[W..2 * W]), L::load(&xs[2 * W..3 * W])];
        let pad = L::load(&pads[0..W]);
        // Padded-box pre-check: x >= min && x <= max, per axis.
        let mut inb = [true; W];
        for (d, &xd) in x.iter().enumerate() {
            let ge = signs(L::splat(bb.min[d]).le(xd));
            let le = signs(xd.le(L::splat(bb.max[d])));
            for l in 0..W {
                inb[l] = inb[l] && ge[l] && le[l];
            }
        }
        *in_box = inb;
        let mut ins = [true; W];
        match *solid {
            Solid::Ellipsoid { center, radii } => {
                let mut s = L::splat(0.0);
                for d in 0..3 {
                    let r = L::splat(radii[d]).add(pad);
                    let bad = signs(r.le(L::splat(0.0)));
                    for l in 0..W {
                        ins[l] = ins[l] && !bad[l];
                    }
                    let t = x[d].sub(L::splat(center[d])).div(r);
                    s = s.add(t.mul(t));
                }
                let le1 = signs(s.le(L::splat(1.0)));
                for l in 0..W {
                    ins[l] = ins[l] && le1[l];
                }
            }
            Solid::Cylinder { p0, p1, radius } => {
                let axis = [p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]];
                let len2: f64 = axis.iter().map(|a| a * a).sum();
                if len2 == 0.0 {
                    ins = [false; W];
                } else {
                    let rel =
                        [x[0].sub(L::splat(p0[0])), x[1].sub(L::splat(p0[1])), x[2].sub(L::splat(p0[2]))];
                    let t = rel[0]
                        .mul(L::splat(axis[0]))
                        .add(rel[1].mul(L::splat(axis[1])))
                        .add(rel[2].mul(L::splat(axis[2])))
                        .div(L::splat(len2));
                    let tl = clamp_lanes(t, 0.0, 1.0);
                    let cap_pad = pad.div(L::splat(len2.sqrt()));
                    let below = signs(t.lt(cap_pad.neg()));
                    let above = signs(L::splat(1.0).add(cap_pad).lt(t));
                    let mut d2 = L::splat(0.0);
                    for d in 0..3 {
                        let closest = L::splat(p0[d]).add(tl.mul(L::splat(axis[d])));
                        let dd = x[d].sub(closest);
                        d2 = d2.add(dd.mul(dd));
                    }
                    let rp = L::splat(radius).add(pad);
                    let hit = signs(d2.le(rp.mul(rp)));
                    for l in 0..W {
                        ins[l] = !below[l] && !above[l] && hit[l];
                    }
                }
            }
            Solid::Slab { aabb } => {
                for (d, &xd) in x.iter().enumerate() {
                    let lo = L::splat(aabb.min[d]).sub(pad);
                    let hi = L::splat(aabb.max[d]).add(pad);
                    let ge = signs(lo.le(xd));
                    let le = signs(xd.le(hi));
                    for l in 0..W {
                        ins[l] = ins[l] && ge[l] && le[l];
                    }
                }
            }
            Solid::OrientedSlab { center, axes, half } => {
                let d = [
                    x[0].sub(L::splat(center[0])),
                    x[1].sub(L::splat(center[1])),
                    x[2].sub(L::splat(center[2])),
                ];
                for i in 0..3 {
                    let proj = d[0]
                        .mul(L::splat(axes[i][0]))
                        .add(d[1].mul(L::splat(axes[i][1])))
                        .add(d[2].mul(L::splat(axes[i][2])));
                    let okp = signs(proj.abs().le(L::splat(half[i]).add(pad)));
                    for l in 0..W {
                        ins[l] = ins[l] && okp[l];
                    }
                }
            }
        }
        *inside = ins;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overset_solver::Isa;

    /// Deterministic LCG doubles in [0, 1).
    fn rng(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn containment_matches_scalar_for_every_solid() {
        let solids = [
            Solid::Ellipsoid { center: [0.2, -0.1, 0.4], radii: [1.0, 0.6, 0.8] },
            Solid::Cylinder { p0: [-1.0, 0.0, 0.0], p1: [1.0, 0.5, 0.2], radius: 0.5 },
            Solid::Slab { aabb: Aabb::new([-0.5, -0.5, -0.5], [0.5, 0.7, 0.9]) },
            Solid::OrientedSlab {
                center: [0.1, 0.2, 0.3],
                axes: [[1.0, 0.0, 0.0], [0.0, 0.8, 0.6], [0.0, -0.6, 0.8]],
                half: [0.4, 0.3, 0.5],
            },
        ];
        let mut seed = 0x5eed;
        for solid in &solids {
            let bb = solid.bbox().inflate(0.3);
            for _ in 0..64 {
                let mut xs = [0.0f64; 3 * W];
                let mut pads = [0.0f64; W];
                for l in 0..W {
                    for m in 0..3 {
                        xs[m * W + l] = 4.0 * rng(&mut seed) - 2.0;
                    }
                    pads[l] = 0.3 * rng(&mut seed);
                }
                for isa in [Isa::Scalar, overset_solver::select_isa(true)] {
                    let (mut inb, mut ins) = ([false; W], [false; W]);
                    containment_lanes(isa, solid, &bb, &xs, &pads, &mut inb, &mut ins);
                    for l in 0..W {
                        let x = [xs[l], xs[W + l], xs[2 * W + l]];
                        assert_eq!(inb[l], bb.contains(x), "{solid:?} in_box lane {l}");
                        assert_eq!(ins[l], solid.contains(x, pads[l]), "{solid:?} inside lane {l}");
                    }
                }
            }
        }
    }
}
