//! Property-based tests of the donor search and interpolation machinery.

use overset_connectivity::donor::center_start;
use overset_connectivity::{interpolate, walk_search, SearchCost, SearchOutcome};
use overset_grid::curvilinear::{CurvilinearGrid, GridKind};
use overset_grid::field::Field3;
use overset_grid::{Dims, Ijk};
use overset_solver::{Block, FlowConditions};
use proptest::prelude::*;

fn fc() -> FlowConditions {
    FlowConditions::new(0.8, 0.0, 0.0)
}

/// A smoothly distorted curvilinear block for search tests.
fn wavy_block(n: usize, amp: f64) -> Block {
    let d = Dims::new(n, n, n);
    let coords = Field3::from_fn(d, |p| {
        let (x, y, z) = (p.i as f64, p.j as f64, p.k as f64);
        [
            x + amp * (0.7 * y + 0.3 * z).sin(),
            y + amp * (0.5 * x + 0.4 * z).cos() - amp,
            z + amp * (0.3 * x + 0.6 * y).sin(),
        ]
    });
    let g = CurvilinearGrid::new("wavy", coords, GridKind::Background);
    Block::from_grid(0, &g, d.full_box(), [None; 6], &fc())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any point synthesized *inside* a known cell is found, and the found
    /// cell reproduces the point through the forward trilinear map.
    #[test]
    fn walk_finds_synthesized_interior_points(
        ci in 1usize..8, cj in 1usize..8, ck in 1usize..8,
        ti in 0.05f64..0.95, tj in 0.05f64..0.95, tk in 0.05f64..0.95,
        si in 0usize..9, sj in 0usize..9, sk in 0usize..9,
        amp in 0.0f64..0.25,
    ) {
        let b = wavy_block(10, amp);
        // Forward-map a point inside cell (ci, cj, ck).
        let cell = b.to_local(Ijk::new(ci, cj, ck));
        let mut target = [0.0f64; 3];
        for dk in 0..2 {
            for dj in 0..2 {
                for di in 0..2 {
                    let w = (if di == 0 { 1.0 - ti } else { ti })
                        * (if dj == 0 { 1.0 - tj } else { tj })
                        * (if dk == 0 { 1.0 - tk } else { tk });
                    let c = b.coords[Ijk::new(cell.i + di, cell.j + dj, cell.k + dk)];
                    for m in 0..3 {
                        target[m] += w * c[m];
                    }
                }
            }
        }
        let start = b.to_local(Ijk::new(si, sj, sk));
        let mut cost = SearchCost::default();
        match walk_search(&b, target, start, &mut cost) {
            SearchOutcome::Found(d) => {
                // Verify by interpolating the coordinates themselves.
                let mut bb = wavy_block(10, amp);
                for p in bb.local_dims.iter().collect::<Vec<_>>() {
                    let c = bb.coords[p];
                    bb.q.set_node(p, [c[0], c[1], c[2], 0.0, 0.0]);
                }
                let q = interpolate(&bb, &d);
                for m in 0..3 {
                    prop_assert!(
                        (q[m] - target[m]).abs() < 1e-6,
                        "coordinate interp mismatch: {:?} vs {:?}",
                        q, target
                    );
                }
            }
            o => prop_assert!(false, "interior point not found: {o:?} (cost {cost:?})"),
        }
    }

    /// Points far outside the grid never produce a donor.
    #[test]
    fn outside_points_never_found(
        dx in 20.0f64..100.0,
        dir in 0usize..6,
        amp in 0.0f64..0.2,
    ) {
        let b = wavy_block(8, amp);
        let mut target = [3.5f64; 3];
        target[dir / 2] += if dir % 2 == 0 { dx } else { -dx };
        let mut cost = SearchCost::default();
        let out = walk_search(&b, target, center_start(&b), &mut cost);
        prop_assert!(!matches!(out, SearchOutcome::Found(_)), "found {out:?}");
    }

    /// Interpolation is exact for linear fields regardless of the donor
    /// location (the fundamental Chimera accuracy property).
    #[test]
    fn interpolation_exact_on_linear_fields(
        a in -2.0f64..2.0, bcoef in -2.0f64..2.0, c in -2.0f64..2.0, d0 in -2.0f64..2.0,
        px in 1.2f64..5.8, py in 1.2f64..5.8, pz in 1.2f64..5.8,
    ) {
        let mut b = wavy_block(8, 0.1);
        for p in b.local_dims.iter().collect::<Vec<_>>() {
            let x = b.coords[p];
            let f = a * x[0] + bcoef * x[1] + c * x[2] + d0;
            b.q.set_node(p, [f, 2.0 * f, -f, 0.5 * f, f + 1.0]);
        }
        let target = [px, py, pz];
        let mut cost = SearchCost::default();
        if let SearchOutcome::Found(dn) = walk_search(&b, target, center_start(&b), &mut cost) {
            let q = interpolate(&b, &dn);
            let expect = a * px + bcoef * py + c * pz + d0;
            prop_assert!((q[0] - expect).abs() < 1e-8, "{} vs {}", q[0], expect);
            prop_assert!((q[1] - 2.0 * expect).abs() < 1e-8);
        }
    }

    /// Search cost accounting is always positive and bounded.
    #[test]
    fn search_costs_bounded(
        px in 0.5f64..6.5, py in 0.5f64..6.5, pz in 0.5f64..6.5,
    ) {
        let b = wavy_block(8, 0.15);
        let mut cost = SearchCost::default();
        let _ = walk_search(&b, [px, py, pz], center_start(&b), &mut cost);
        prop_assert!(cost.walk_steps >= 1);
        prop_assert!(cost.flops() >= cost.walk_steps * 60);
        // Greedy fallback budget bounds the total walk.
        prop_assert!(cost.walk_steps < 500, "runaway walk: {}", cost.walk_steps);
    }
}
