//! The wire format: explicit, versioned encode/decode for every payload
//! that crosses a rank boundary.
//!
//! The in-process backend can hand a `Box<dyn Any>` straight across a
//! mailbox, but the moment ranks live in different OS processes (or on
//! different hosts) every message needs a byte representation. [`Wire`] is
//! that contract: `encode ∘ decode = id`, byte-for-byte deterministic, with
//! no dependence on host endianness, pointer width, or allocator state.
//!
//! Conventions (see docs/TRANSPORT.md for the normative description):
//!
//! * all integers are **fixed-width little-endian**; `usize` travels as
//!   `u64` and decode rejects values that do not fit the host,
//! * floats travel as their IEEE-754 bit patterns (`to_bits`), so NaN
//!   payloads and signed zeros round-trip exactly — virtual clocks are
//!   compared bitwise across transports and must not be disturbed,
//! * `Vec`/`String` are a `u64` length followed by the elements; `Option`
//!   and `Result` are a one-byte discriminant followed by the payload,
//! * there is no self-description: both ends must agree on the type. The
//!   transport layer guards this with [`wire_type_hash`], and the schema as
//!   a whole is pinned by [`WIRE_SCHEMA_VERSION`] plus a golden byte test
//!   (`tests/wire_roundtrip.rs`).

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Version of the wire schema spoken by this build. Bump whenever any
/// `Wire` impl or the frame protocol in [`crate::transport`] changes shape;
/// the golden byte test pins the encoding for the current version.
///
/// v2: `RankOutput` gained a trailing `host_time: [f64; NUM_PHASES]` field
/// (host wall-clock seconds per phase). Primitive encodings are unchanged.
///
/// v3: `RankOutput` gained trailing `alloc_steps: Vec<AllocRecord>` and
/// `alloc: AllocTotals` fields (per-step and end-of-run allocation
/// attribution; the alloc ring evicts in lockstep with the step ring, so
/// `steps_dropped` covers both). Primitive encodings are unchanged.
pub const WIRE_SCHEMA_VERSION: u32 = 3;

/// Decode-side failure. Encoding is infallible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated { needed: usize, available: usize },
    /// A discriminant or invariant check failed (bad enum tag, non-UTF-8
    /// string, out-of-range `usize`, ...).
    Invalid(&'static str),
    /// Decoding succeeded but left unread bytes (only reported by
    /// [`Wire::from_wire_bytes`], which requires exact consumption).
    Trailing { remaining: usize },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated wire data: needed {needed} bytes, {available} available")
            }
            WireError::Invalid(what) => write!(f, "invalid wire data: {what}"),
            WireError::Trailing { remaining } => {
                write!(f, "trailing wire data: {remaining} bytes unread")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over a byte buffer being decoded.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` length prefix, checked against the host's `usize`.
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Invalid("length exceeds usize"))
    }
}

/// A value with an explicit byte representation, exchangeable across any
/// [`crate::transport::Transport`] backend.
///
/// Laws: `decode(encode(x)) == x` for every value, and `encode` is a pure
/// function of the value (no ambient state), so two processes encoding the
/// same logical value produce identical bytes.
pub trait Wire: Sized {
    /// Append this value's wire representation to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Read one value from the cursor.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decode a value that must occupy the buffer exactly.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Trailing { remaining: r.remaining() });
        }
        Ok(v)
    }
}

/// FNV-1a hash of the payload type's name: a cheap cross-process guard that
/// both ends of a message agree on `T`. Stable for a given binary (the
/// multi-process backend re-executes the *same* executable, so
/// `type_name` strings match exactly); **not** stable across compiler
/// versions, which is fine because parent and children are one build.
pub fn wire_type_hash<T: ?Sized>() -> u64 {
    let name = std::any::type_name::<T>();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Intern a decoded string as `&'static str`. Several observability types
/// (trace categories, metric names, error phases) hold `&'static str`
/// fields; after crossing a process boundary the bytes arrive owned, and
/// this leaks each *distinct* string once to restore the static lifetime.
/// The set of such strings is a small fixed vocabulary, so the leak is
/// bounded.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = pool.lock().unwrap();
    if let Some(&have) = set.get(s) {
        return have;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(
                    r.take(std::mem::size_of::<$t>())?.try_into().unwrap(),
                ))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.u64()?).map_err(|_| WireError::Invalid("usize out of range"))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool discriminant")),
        }
    }
}

impl Wire for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.to_bits().encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(r.u32()?))
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.to_bits().encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u64).to_le_bytes());
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len_prefix()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-UTF-8 string"))
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len_prefix()?;
        // Guard against hostile/corrupt length prefixes: never reserve more
        // slots than there are bytes left (zero-sized elements aside).
        let mut out = Vec::with_capacity(n.min(r.remaining().max(16)));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        <[T; N]>::try_from(out).map_err(|_| WireError::Invalid("array length"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Invalid("Option discriminant")),
        }
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                buf.push(0);
                v.encode(buf);
            }
            Err(e) => {
                buf.push(1);
                e.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            _ => Err(WireError::Invalid("Result discriminant")),
        }
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire_bytes();
        let back = T::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdeadu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-1i8);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip(-0.0f64);
        roundtrip(());
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_cafe);
        let bytes = weird.to_wire_bytes();
        let back = f64::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip([1.0f64, -2.5, f64::INFINITY]);
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip(Ok::<u32, String>(7));
        roundtrip(Err::<u32, String>("boom".into()));
        roundtrip(Box::new(99u64));
        roundtrip((1u32, 2.0f64));
        roundtrip((1u32, 2.0f64, String::from("x")));
        roundtrip((1u8, 2u8, 3u8, 4u8));
        roundtrip((1u8, 2u8, 3u8, 4u8, 5.0f64));
        roundtrip(vec![(1usize, vec![Some(1.5f64), None])]);
    }

    #[test]
    fn little_endian_on_the_wire() {
        assert_eq!(0x0102_0304u32.to_wire_bytes(), vec![4, 3, 2, 1]);
        assert_eq!(1u64.to_wire_bytes(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn truncated_and_trailing_are_errors() {
        let bytes = 7u64.to_wire_bytes();
        assert!(matches!(u64::from_wire_bytes(&bytes[..4]), Err(WireError::Truncated { .. })));
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(u64::from_wire_bytes(&long), Err(WireError::Trailing { remaining: 1 })));
    }

    #[test]
    fn bad_discriminants_are_errors() {
        assert!(matches!(bool::from_wire_bytes(&[2]), Err(WireError::Invalid(_))));
        assert!(matches!(Option::<u8>::from_wire_bytes(&[9]), Err(WireError::Invalid(_))));
        assert!(matches!(Result::<u8, u8>::from_wire_bytes(&[9]), Err(WireError::Invalid(_))));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // Length claims 2^60 elements but only 3 bytes follow.
        let mut bytes = (1u64 << 60).to_wire_bytes();
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(Vec::<u64>::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn type_hash_distinguishes_types() {
        assert_ne!(wire_type_hash::<u64>(), wire_type_hash::<f64>());
        assert_ne!(wire_type_hash::<Vec<u8>>(), wire_type_hash::<Vec<u16>>());
        assert_eq!(wire_type_hash::<u64>(), wire_type_hash::<u64>());
    }

    #[test]
    fn intern_returns_same_pointer() {
        let a = intern("flow-phase-test");
        let b = intern(&String::from("flow-phase-test"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "flow-phase-test");
    }
}
