//! Streaming telemetry sinks: bounded-memory, on-disk span recording.
//!
//! The in-memory tracer and flight recorder hold every span and step record
//! until the run ends — fine for the paper's table sizes, fatal for
//! full-length table5/6 histories or 1024–4096-rank sweeps. A
//! [`StreamConfig`] on [`crate::TraceConfig`] instead routes telemetry to a
//! per-rank file *as spans close*, so peak memory is O(open spans + one
//! chunk) regardless of run length. Two formats:
//!
//! - **Chrome fragments** ([`StreamFormat::Chrome`]): each rank writes
//!   exactly the bytes [`crate::chrome_trace_json`] would emit for that
//!   rank; [`assemble_chrome`] concatenates the fragments into a document
//!   byte-identical to the in-memory exporter's.
//! - **Binary spans** ([`StreamFormat::Binary`]): a compact, versioned
//!   format built on the same [`crate::Wire`] encoding discipline the
//!   process transport uses (see docs/TRANSPORT.md). Step records are
//!   flushed at every step boundary, so even a rank killed mid-run leaves a
//!   truncated-but-parseable stream; [`read_span_dir`] recovers the prefix
//!   and reports the gap.
//!
//! ## Binary span file layout (schema v2)
//!
//! All integers little-endian, payloads encoded per the `Wire` rules:
//!
//! ```text
//! header:  magic "OSPN" | u32 version (=2) | u32 rank
//! chunks:  u32 len | body (len bytes) — body = u8 kind + payload
//!   kind 1: payload = Vec<TraceEvent>   (events, recording order)
//!   kind 2: payload = StepRecord        (one per step boundary)
//!   kind 3: payload = AllocRecord       (one per step boundary, after its
//!           kind-2 chunk — per-phase allocation deltas for the step)
//!   kind 0: payload = (u64 total_events, u64 total_steps,
//!                      u64 steps_dropped, u64 total_alloc_steps)
//!           — the footer; must be the last chunk
//! ```
//!
//! v1 had no kind-3 chunks and a three-field footer.
//!
//! A file whose last chunk is incomplete (killed writer) is readable up to
//! the last complete chunk; the missing footer marks the truncation — and
//! because alloc records flush at every step boundary, a dead rank still
//! yields a partial per-step host allocation profile.

use crate::alloc::AllocRecord;
use crate::flight::StepRecord;
use crate::trace::{write_event_json, write_process_meta, RankTrace, TraceEvent};
use crate::wire::Wire;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version of the binary span file layout. Bump on any change to the
/// header, chunk framing, or chunk payload shapes; the golden byte test in
/// `tests/sink_stream.rs` pins the current version.
///
/// v2: added per-step allocation-record chunks (kind 3) and a fourth footer
/// field counting them.
pub const SPAN_SCHEMA_VERSION: u32 = 2;

/// Magic prefix of a binary span file.
pub const SPAN_MAGIC: [u8; 4] = *b"OSPN";

const CHUNK_FOOTER: u8 = 0;
const CHUNK_EVENTS: u8 = 1;
const CHUNK_STEP: u8 = 2;
const CHUNK_ALLOC: u8 = 3;

/// Events buffered per rank before an event chunk is flushed (spans also
/// flush at every step boundary). Bounds sink memory at O(chunk).
const EVENT_CHUNK_LEN: usize = 1024;

/// Bytes buffered in the Chrome fragment writer before hitting the file.
const CHROME_FLUSH_BYTES: usize = 64 * 1024;

/// On-disk telemetry format of a streaming sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFormat {
    /// Per-rank Chrome `trace_event` fragments; [`assemble_chrome`] yields
    /// a document byte-identical to [`crate::chrome_trace_json`].
    Chrome,
    /// Compact versioned binary spans + step records (schema above).
    Binary,
}

/// Where and how a traced universe streams telemetry to disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Directory receiving one file per rank (created if absent).
    pub dir: PathBuf,
    pub format: StreamFormat,
}

impl StreamConfig {
    /// Stream binary span files (`rank-NNNNN.spans`) into `dir`.
    pub fn binary(dir: impl Into<PathBuf>) -> Self {
        StreamConfig { dir: dir.into(), format: StreamFormat::Binary }
    }

    /// Stream Chrome JSON fragments (`rank-NNNNN.chrome`) into `dir`.
    pub fn chrome(dir: impl Into<PathBuf>) -> Self {
        StreamConfig { dir: dir.into(), format: StreamFormat::Chrome }
    }
}

fn rank_path(dir: &Path, rank: usize, ext: &str) -> PathBuf {
    dir.join(format!("rank-{rank:05}.{ext}"))
}

/// Streaming telemetry is on the failure path of nothing — an unwritable
/// sink aborts the rank like any other rank panic, with a message naming
/// the file.
fn io_fail(path: &Path, what: &str, e: std::io::Error) -> ! {
    panic!("telemetry stream: {what} {} failed: {e}", path.display());
}

/// One rank's open streaming sink (held by the tracer).
#[derive(Debug)]
pub(crate) enum SinkWriter {
    Chrome(ChromeSink),
    Binary(SpanSink),
}

impl SinkWriter {
    pub(crate) fn create(cfg: &StreamConfig, rank: usize) -> SinkWriter {
        if let Err(e) = fs::create_dir_all(&cfg.dir) {
            io_fail(&cfg.dir, "creating directory", e);
        }
        match cfg.format {
            StreamFormat::Chrome => SinkWriter::Chrome(ChromeSink::create(&cfg.dir, rank)),
            StreamFormat::Binary => SinkWriter::Binary(SpanSink::create(&cfg.dir, rank)),
        }
    }

    pub(crate) fn push_event(&mut self, e: TraceEvent) {
        match self {
            SinkWriter::Chrome(s) => s.push_event(&e),
            SinkWriter::Binary(s) => s.push_event(e),
        }
    }

    /// Record one closed step. Binary sinks persist it immediately (so a
    /// killed rank leaves all closed steps on disk); Chrome fragments carry
    /// spans only.
    pub(crate) fn push_step(&mut self, rec: &StepRecord) {
        match self {
            SinkWriter::Chrome(_) => {}
            SinkWriter::Binary(s) => s.push_step(rec),
        }
    }

    /// Record one closed step's allocation deltas (binary sinks only),
    /// persisted immediately like the step record it follows.
    pub(crate) fn push_alloc_step(&mut self, rec: &AllocRecord) {
        match self {
            SinkWriter::Chrome(_) => {}
            SinkWriter::Binary(s) => s.push_alloc_step(rec),
        }
    }

    pub(crate) fn finish(&mut self, steps_dropped: u64) {
        match self {
            SinkWriter::Chrome(s) => s.flush(),
            SinkWriter::Binary(s) => s.write_footer(steps_dropped),
        }
    }
}

/// Per-rank Chrome `trace_event` fragment writer. The fragment holds the
/// rank's process-metadata event followed by each span's rendering — the
/// exact byte ranges [`crate::chrome_trace_json`] would produce for this
/// rank, sharing its rendering helpers.
#[derive(Debug)]
pub(crate) struct ChromeSink {
    file: File,
    path: PathBuf,
    rank: usize,
    buf: String,
}

impl ChromeSink {
    fn create(dir: &Path, rank: usize) -> ChromeSink {
        let path = rank_path(dir, rank, "chrome");
        let file = match File::create(&path) {
            Ok(f) => f,
            Err(e) => io_fail(&path, "creating", e),
        };
        let mut buf = String::new();
        write_process_meta(&mut buf, rank);
        ChromeSink { file, path, rank, buf }
    }

    fn push_event(&mut self, e: &TraceEvent) {
        write_event_json(&mut self.buf, self.rank, e);
        if self.buf.len() >= CHROME_FLUSH_BYTES {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Err(e) = self.file.write_all(self.buf.as_bytes()) {
            io_fail(&self.path, "writing", e);
        }
        self.buf.clear();
    }
}

/// Per-rank binary span writer (schema v1, layout in the module docs).
#[derive(Debug)]
pub(crate) struct SpanSink {
    file: File,
    path: PathBuf,
    events: Vec<TraceEvent>,
    total_events: u64,
    total_steps: u64,
    total_alloc_steps: u64,
}

impl SpanSink {
    fn create(dir: &Path, rank: usize) -> SpanSink {
        let path = rank_path(dir, rank, "spans");
        let file = match File::create(&path) {
            Ok(f) => f,
            Err(e) => io_fail(&path, "creating", e),
        };
        let mut s = SpanSink {
            file,
            path,
            events: Vec::new(),
            total_events: 0,
            total_steps: 0,
            total_alloc_steps: 0,
        };
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&SPAN_MAGIC);
        header.extend_from_slice(&SPAN_SCHEMA_VERSION.to_le_bytes());
        header.extend_from_slice(&(rank as u32).to_le_bytes());
        s.write_all(&header);
        s
    }

    fn write_all(&mut self, bytes: &[u8]) {
        if let Err(e) = self.file.write_all(bytes) {
            io_fail(&self.path, "writing", e);
        }
    }

    fn write_chunk(&mut self, kind: u8, payload: &[u8]) {
        let mut out = Vec::with_capacity(5 + payload.len());
        out.extend_from_slice(&((payload.len() + 1) as u32).to_le_bytes());
        out.push(kind);
        out.extend_from_slice(payload);
        self.write_all(&out);
    }

    fn push_event(&mut self, e: TraceEvent) {
        self.events.push(e);
        if self.events.len() >= EVENT_CHUNK_LEN {
            self.flush_events();
        }
    }

    fn flush_events(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let payload = self.events.to_wire_bytes();
        self.total_events += self.events.len() as u64;
        self.events.clear();
        self.write_chunk(CHUNK_EVENTS, &payload);
    }

    fn push_step(&mut self, rec: &StepRecord) {
        // Flush buffered spans first so the file reads as "everything up to
        // and including step k" at every step boundary.
        self.flush_events();
        self.total_steps += 1;
        let payload = rec.to_wire_bytes();
        self.write_chunk(CHUNK_STEP, &payload);
    }

    fn push_alloc_step(&mut self, rec: &AllocRecord) {
        self.total_alloc_steps += 1;
        let payload = rec.to_wire_bytes();
        self.write_chunk(CHUNK_ALLOC, &payload);
    }

    fn write_footer(&mut self, steps_dropped: u64) {
        self.flush_events();
        let payload = (self.total_events, self.total_steps, steps_dropped, self.total_alloc_steps)
            .to_wire_bytes();
        self.write_chunk(CHUNK_FOOTER, &payload);
        if let Err(e) = self.file.flush() {
            io_fail(&self.path, "flushing", e);
        }
    }
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

/// One rank's stream read back from disk. `truncation` is `None` for a
/// complete stream (footer present, counts consistent) and names the gap
/// otherwise — the recovered prefix stays usable either way.
#[derive(Clone, Debug)]
pub struct RankStream {
    pub rank: usize,
    pub events: Vec<TraceEvent>,
    pub steps: Vec<StepRecord>,
    /// Per-step allocation deltas, streamed in lockstep with `steps`; a
    /// truncated stream may hold one fewer alloc record than step records
    /// (writer died between the two chunks).
    pub alloc_steps: Vec<AllocRecord>,
    /// Step records evicted by the writer's ring, from the footer (0 when
    /// the footer is missing).
    pub steps_dropped: u64,
    pub truncation: Option<String>,
}

/// Parse one binary span file, tolerating truncation after any complete
/// chunk. Hard errors (bad magic, unsupported version, header cut short)
/// mean the file is not a readable span stream at all.
pub fn read_span_file(path: &Path) -> Result<RankStream, String> {
    let bytes =
        fs::read(path).map_err(|e| format!("cannot read span file {}: {e}", path.display()))?;
    if bytes.len() < 12 {
        return Err(format!(
            "{}: too short for a span-file header ({} bytes, need 12)",
            path.display(),
            bytes.len()
        ));
    }
    if bytes[..4] != SPAN_MAGIC {
        return Err(format!("{}: not a span file (bad magic)", path.display()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != SPAN_SCHEMA_VERSION {
        return Err(format!(
            "{}: span schema version {version} unsupported (this build reads v{SPAN_SCHEMA_VERSION})",
            path.display()
        ));
    }
    let rank = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut out = RankStream {
        rank,
        events: Vec::new(),
        steps: Vec::new(),
        alloc_steps: Vec::new(),
        steps_dropped: 0,
        truncation: None,
    };
    let mut pos = 12usize;
    let mut footer: Option<(u64, u64, u64, u64)> = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 4 {
            out.truncation = Some(format!(
                "stream ends inside a chunk header ({remaining} trailing bytes discarded)"
            ));
            return Ok(out);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if len == 0 {
            out.truncation = Some(format!("empty chunk at byte {pos}"));
            return Ok(out);
        }
        if remaining < 4 + len {
            out.truncation = Some(format!(
                "stream ends inside a chunk body at byte {pos} \
                 ({} of {len} body bytes present)",
                remaining - 4
            ));
            return Ok(out);
        }
        let body = &bytes[pos + 4..pos + 4 + len];
        pos += 4 + len;
        let (kind, payload) = (body[0], &body[1..]);
        match kind {
            CHUNK_EVENTS => match Vec::<TraceEvent>::from_wire_bytes(payload) {
                Ok(mut evs) => out.events.append(&mut evs),
                Err(e) => {
                    out.truncation = Some(format!("corrupt event chunk: {e:?}"));
                    return Ok(out);
                }
            },
            CHUNK_STEP => match StepRecord::from_wire_bytes(payload) {
                Ok(rec) => out.steps.push(rec),
                Err(e) => {
                    out.truncation = Some(format!("corrupt step chunk: {e:?}"));
                    return Ok(out);
                }
            },
            CHUNK_ALLOC => match AllocRecord::from_wire_bytes(payload) {
                Ok(rec) => out.alloc_steps.push(rec),
                Err(e) => {
                    out.truncation = Some(format!("corrupt alloc chunk: {e:?}"));
                    return Ok(out);
                }
            },
            CHUNK_FOOTER => match <(u64, u64, u64, u64)>::from_wire_bytes(payload) {
                Ok(f) => {
                    footer = Some(f);
                    if pos != bytes.len() {
                        out.truncation =
                            Some(format!("{} bytes of data after the footer", bytes.len() - pos));
                    }
                    break;
                }
                Err(e) => {
                    out.truncation = Some(format!("corrupt footer chunk: {e:?}"));
                    return Ok(out);
                }
            },
            k => {
                out.truncation = Some(format!("unknown chunk kind {k} at byte {pos}"));
                return Ok(out);
            }
        }
    }
    match footer {
        Some((ev, st, dropped, al)) => {
            out.steps_dropped = dropped;
            if ev != out.events.len() as u64
                || st != out.steps.len() as u64
                || al != out.alloc_steps.len() as u64
            {
                out.truncation = Some(format!(
                    "footer counts disagree with stream contents \
                     (footer: {ev} events / {st} steps / {al} alloc records; \
                     read: {} / {} / {})",
                    out.events.len(),
                    out.steps.len(),
                    out.alloc_steps.len()
                ));
            }
        }
        None if out.truncation.is_none() => {
            out.truncation = Some(format!(
                "stream ends without a footer (writer died?); recovered {} events and {} steps",
                out.events.len(),
                out.steps.len()
            ));
        }
        None => {}
    }
    Ok(out)
}

/// All ranks' streams from a sink directory, sorted by rank. `gaps` carries
/// one message per incomplete stream; an empty `gaps` certifies every rank
/// closed its file with a consistent footer.
#[derive(Clone, Debug)]
pub struct SpanDir {
    pub ranks: Vec<RankStream>,
    pub gaps: Vec<String>,
}

impl SpanDir {
    /// Adapt to the in-memory trace shape the exporter and analyzer take.
    pub fn rank_traces(&self) -> Vec<RankTrace> {
        self.ranks.iter().map(|r| RankTrace { rank: r.rank, events: r.events.clone() }).collect()
    }

    /// Per-rank step records, rank-major (the `AnalysisInput::steps` shape).
    pub fn step_records(&self) -> Vec<Vec<StepRecord>> {
        self.ranks.iter().map(|r| r.steps.clone()).collect()
    }

    /// Per-rank allocation records, rank-major.
    pub fn alloc_records(&self) -> Vec<Vec<AllocRecord>> {
        self.ranks.iter().map(|r| r.alloc_steps.clone()).collect()
    }
}

fn sink_files(dir: &Path, ext: &str) -> Result<Vec<PathBuf>, String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read sink dir {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some(ext))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .{ext} files in {}", dir.display()));
    }
    Ok(files)
}

/// Read every `rank-*.spans` file in `dir` (binary format).
pub fn read_span_dir(dir: &Path) -> Result<SpanDir, String> {
    let mut out = SpanDir { ranks: Vec::new(), gaps: Vec::new() };
    for path in sink_files(dir, "spans")? {
        let stream = read_span_file(&path)?;
        if let Some(t) = &stream.truncation {
            let file = path.file_name().and_then(|f| f.to_str()).unwrap_or("<file>").to_string();
            out.gaps.push(format!("rank {} ({file}): {t}", stream.rank));
        }
        out.ranks.push(stream);
    }
    out.ranks.sort_by_key(|r| r.rank);
    Ok(out)
}

/// Concatenate a Chrome-fragment sink directory into one `trace_event`
/// document — byte-identical to what [`crate::chrome_trace_json`] produces
/// from the same run's in-memory traces.
pub fn assemble_chrome(dir: &Path) -> Result<String, String> {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, path) in sink_files(dir, "chrome")?.iter().enumerate() {
        let frag = fs::read_to_string(path)
            .map_err(|e| format!("cannot read fragment {}: {e}", path.display()))?;
        if i > 0 {
            out.push(',');
        }
        out.push_str(&frag);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\"}}\n");
    Ok(out)
}
