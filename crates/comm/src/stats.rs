//! Per-rank and aggregated performance statistics: the quantities the
//! paper's tables report (Mflops/node, parallel speedup, % time in DCF3D).

use crate::wire::{Wire, WireError, WireReader};

/// Execution phases matching the three-step OVERFLOW-D1 timestep loop (plus
/// balancing and a catch-all).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    Flow = 0,
    Connectivity = 1,
    Motion = 2,
    Balance = 3,
    Other = 4,
}

pub const NUM_PHASES: usize = 5;

impl Phase {
    /// Stable lowercase label used by metric names and trace spans.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Flow => "flow",
            Phase::Connectivity => "connectivity",
            Phase::Motion => "motion",
            Phase::Balance => "balance",
            Phase::Other => "other",
        }
    }
}

/// Statistics accumulated by one rank over a run.
#[derive(Clone, Debug)]
pub struct RankStats {
    pub rank: usize,
    /// Virtual seconds spent per phase.
    pub time: [f64; NUM_PHASES],
    /// Flops performed per phase.
    pub flops: [f64; NUM_PHASES],
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub collectives: u64,
    /// Final virtual clock value.
    pub final_clock: f64,
}

impl RankStats {
    pub fn new(rank: usize) -> Self {
        RankStats {
            rank,
            time: [0.0; NUM_PHASES],
            flops: [0.0; NUM_PHASES],
            msgs_sent: 0,
            bytes_sent: 0,
            collectives: 0,
            final_clock: 0.0,
        }
    }

    pub fn total_time(&self) -> f64 {
        self.time.iter().sum()
    }

    pub fn total_flops(&self) -> f64 {
        self.flops.iter().sum()
    }
}

// Rank statistics travel back from child processes to the parent, so the
// whole record is a wire type. Field order is fixed by the schema version.
impl Wire for RankStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.rank.encode(buf);
        self.time.encode(buf);
        self.flops.encode(buf);
        self.msgs_sent.encode(buf);
        self.bytes_sent.encode(buf);
        self.collectives.encode(buf);
        self.final_clock.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RankStats {
            rank: usize::decode(r)?,
            time: <[f64; NUM_PHASES]>::decode(r)?,
            flops: <[f64; NUM_PHASES]>::decode(r)?,
            msgs_sent: u64::decode(r)?,
            bytes_sent: u64::decode(r)?,
            collectives: u64::decode(r)?,
            final_clock: f64::decode(r)?,
        })
    }
}

/// Aggregated view over all ranks of a run: the table-row quantities.
#[derive(Clone, Debug)]
pub struct PerfSummary {
    pub nranks: usize,
    /// Wall (virtual) time of the run: max over ranks of the final clock.
    pub wall_time: f64,
    /// Sum over ranks of per-phase time.
    pub time: [f64; NUM_PHASES],
    /// Max over ranks of per-phase time. Phases are barrier-separated, so
    /// this is the exact per-phase elapsed (wall) time.
    pub phase_elapsed: [f64; NUM_PHASES],
    /// Sum over ranks of per-phase flops.
    pub flops: [f64; NUM_PHASES],
    pub msgs: u64,
    pub bytes: u64,
}

impl PerfSummary {
    pub fn from_ranks(stats: &[RankStats]) -> Self {
        let mut s = PerfSummary {
            nranks: stats.len(),
            wall_time: 0.0,
            time: [0.0; NUM_PHASES],
            phase_elapsed: [0.0; NUM_PHASES],
            flops: [0.0; NUM_PHASES],
            msgs: 0,
            bytes: 0,
        };
        for r in stats {
            s.wall_time = s.wall_time.max(r.final_clock);
            for p in 0..NUM_PHASES {
                s.time[p] += r.time[p];
                s.phase_elapsed[p] = s.phase_elapsed[p].max(r.time[p]);
                s.flops[p] += r.flops[p];
            }
            s.msgs += r.msgs_sent;
            s.bytes += r.bytes_sent;
        }
        s
    }

    /// Fraction of total (summed) time spent in the connectivity solution —
    /// the "% time in DCF3D" column of the paper's tables.
    pub fn connectivity_fraction(&self) -> f64 {
        let total: f64 = self.time.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.time[Phase::Connectivity as usize] / total
    }

    /// Average Mflops per node: total flops / wall time / nodes / 1e6.
    pub fn mflops_per_node(&self) -> f64 {
        if self.wall_time == 0.0 {
            return 0.0;
        }
        self.flops.iter().sum::<f64>() / self.wall_time / self.nranks as f64 / 1.0e6
    }

    /// Exact per-phase elapsed (wall) time: the max over ranks of the
    /// phase's virtual time. Phases are barrier-separated, so the slowest
    /// rank sets the elapsed time. This is the quantity the per-module
    /// speedup tables report.
    pub fn phase_time(&self, p: Phase) -> f64 {
        self.phase_elapsed[p as usize]
    }

    /// *Average* per-rank phase time (summed phase time / nranks). This is
    /// an average, not an elapsed time: it equals [`PerfSummary::phase_time`]
    /// only when the phase is perfectly balanced, and bounds it from below
    /// otherwise. Use `phase_time` for table rows.
    pub fn mean_phase_time(&self, p: Phase) -> f64 {
        self.time[p as usize] / self.nranks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rank: usize, flow: f64, conn: f64, flops: f64) -> RankStats {
        let mut s = RankStats::new(rank);
        s.time[Phase::Flow as usize] = flow;
        s.time[Phase::Connectivity as usize] = conn;
        s.flops[Phase::Flow as usize] = flops;
        s.final_clock = flow + conn;
        s
    }

    #[test]
    fn summary_aggregates() {
        let ranks = vec![mk(0, 8.0, 2.0, 100.0e6), mk(1, 6.0, 4.0, 80.0e6)];
        let s = PerfSummary::from_ranks(&ranks);
        assert_eq!(s.nranks, 2);
        assert_eq!(s.wall_time, 10.0);
        assert!((s.connectivity_fraction() - 6.0 / 20.0).abs() < 1e-12);
        // 180 Mflop over 10 s over 2 nodes = 9 Mflops/node.
        assert!((s.mflops_per_node() - 9.0).abs() < 1e-12);
        assert!((s.mean_phase_time(Phase::Flow) - 7.0).abs() < 1e-12);
        // Elapsed is the max over ranks, not the mean.
        assert!((s.phase_time(Phase::Flow) - 8.0).abs() < 1e-12);
        assert!((s.phase_time(Phase::Connectivity) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_phase_fraction_is_zero() {
        let s = PerfSummary::from_ranks(&[RankStats::new(0)]);
        assert_eq!(s.connectivity_fraction(), 0.0);
        assert_eq!(s.mflops_per_node(), 0.0);
    }
}
