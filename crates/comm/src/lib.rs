//! Message-passing substrate with deterministic virtual time.
//!
//! The paper ran MPI on the IBM SP2 and IBM SP. This crate substitutes a
//! rank-per-thread MIMD runtime — each rank owns only its subdomain data and
//! communicates through typed channel messages — combined with machine
//! models of the 1997 systems that convert the *recorded* work (flops) and
//! communication (message latency + bytes/bandwidth) into virtual seconds.
//! Parallel speedups, Mflops/node rates and phase-time fractions computed in
//! virtual time reproduce the cost structure the paper measured, and are
//! bit-deterministic regardless of host scheduling.
//!
//! Observability rides on the same virtual clock: every rank carries a
//! [`metrics::MetricsRegistry`] and (optionally) a [`trace::Tracer`] whose
//! spans export to Chrome `trace_event` JSON — see docs/OBSERVABILITY.md.
//!
//! The runtime is transport-agnostic: the same rank program runs on the
//! in-process backend (threads/coroutines sharing mailboxes) or on the
//! process backend (rank groups in forked OS processes speaking a versioned
//! wire format over Unix sockets) with bit-identical virtual time — see
//! docs/TRANSPORT.md and [`transport::TransportConfig`].
//!
//! See DESIGN.md §2 for the substitution argument.

pub mod alloc;
pub mod arena;
pub mod error;
pub mod flight;
pub mod machine;
pub mod metrics;
pub mod runtime;
mod sched;
pub mod sink;
pub mod stats;
pub mod trace;
pub mod transport;
pub mod wire;

pub use alloc::{AllocRecord, AllocSnapshot, AllocTotals, CountingAlloc, RankAllocCounters};
pub use arena::VecPool;
pub use error::OversetError;
pub use flight::{FlightRecorder, StepRecord, DEFAULT_STEP_CAPACITY};
pub use machine::{CacheModel, MachineModel, WorkClass};
pub use metrics::{Histogram, MetricsRegistry};
pub use runtime::{Comm, PhaseGuard, RankOutput, Universe, UniverseBuilder};
pub use sink::{
    assemble_chrome, read_span_dir, read_span_file, RankStream, SpanDir, StreamConfig,
    StreamFormat, SPAN_SCHEMA_VERSION,
};
pub use stats::{PerfSummary, Phase, RankStats, NUM_PHASES};
pub use trace::{
    chrome_trace_json, ArgVal, CategoryFilter, RankTrace, TraceConfig, TraceEvent, Tracer,
};
pub use transport::{Transport, TransportConfig};
pub use wire::{intern, wire_type_hash, Wire, WireError, WireReader, WIRE_SCHEMA_VERSION};

/// One-stop imports for writing a rank program:
/// `use overset_comm::prelude::*;`.
pub mod prelude {
    pub use crate::alloc::{AllocRecord, AllocTotals};
    pub use crate::error::OversetError;
    pub use crate::flight::StepRecord;
    pub use crate::machine::{MachineModel, WorkClass};
    pub use crate::metrics::{names as metric_names, MetricsRegistry};
    pub use crate::runtime::{Comm, PhaseGuard, RankOutput, Universe, UniverseBuilder};
    pub use crate::sink::{StreamConfig, StreamFormat};
    pub use crate::stats::{PerfSummary, Phase, RankStats, NUM_PHASES};
    pub use crate::trace::{
        chrome_trace_json, ArgVal, CategoryFilter, RankTrace, TraceConfig, TraceEvent,
    };
    pub use crate::transport::TransportConfig;
    pub use crate::wire::{Wire, WireError, WireReader};
}
