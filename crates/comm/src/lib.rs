//! Message-passing substrate with deterministic virtual time.
//!
//! The paper ran MPI on the IBM SP2 and IBM SP. This crate substitutes a
//! rank-per-thread MIMD runtime — each rank owns only its subdomain data and
//! communicates through typed channel messages — combined with machine
//! models of the 1997 systems that convert the *recorded* work (flops) and
//! communication (message latency + bytes/bandwidth) into virtual seconds.
//! Parallel speedups, Mflops/node rates and phase-time fractions computed in
//! virtual time reproduce the cost structure the paper measured, and are
//! bit-deterministic regardless of host scheduling.
//!
//! See DESIGN.md §2 for the substitution argument.

pub mod machine;
pub mod runtime;
pub mod stats;

pub use machine::{CacheModel, MachineModel, WorkClass};
pub use runtime::{Comm, RankOutput, Universe};
pub use stats::{PerfSummary, Phase, RankStats, NUM_PHASES};
