//! Step-scoped allocation reuse: a recycling pool of `Vec<T>` buffers.
//!
//! The connectivity protocol moves `Vec` payloads *by value* through the
//! comm layer (`send` takes ownership; `recv` hands back a fresh vector).
//! Without reuse, every round of every step allocates its request and
//! answer buffers anew. `VecPool` closes the loop: finished vectors are
//! cleared and parked, and the next `take` hands one back with its
//! capacity intact. In steady state the pool is stocked by the vectors a
//! rank receives, so per-round allocations drop to (almost) zero.
//!
//! The pool deliberately does nothing clever: no size classes, no cap. A
//! rank's working set of buffers is bounded by `nranks` per round and the
//! round count is bounded, so the high-water mark is small and reached
//! within the first step or two.

/// A recycling pool of `Vec<T>` buffers. `take` returns a cleared vector
/// (reusing a parked one when available), `put` parks a vector for reuse.
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VecPool<T> {
    pub const fn new() -> Self {
        VecPool { free: Vec::new() }
    }

    /// A cleared vector, recycled from the pool when one is parked.
    pub fn take(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Park a vector for reuse. Its contents are dropped now; its
    /// capacity survives for the next `take`.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.free.push(v);
    }

    /// Number of parked buffers (diagnostics / tests).
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_capacity() {
        let mut pool: VecPool<u32> = VecPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        assert!(cap >= 100);
        pool.put(v);
        assert_eq!(pool.parked(), 1);
        let w = pool.take();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), cap);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn take_on_empty_pool_is_fresh() {
        let mut pool: VecPool<String> = VecPool::new();
        let v = pool.take();
        assert!(v.is_empty() && v.capacity() == 0);
    }
}
