//! Workspace-wide error type (hand-rolled thiserror-style, no deps).
//!
//! Protocol-level failures that used to panic inside the runtime —
//! mistyped receives, mixed-type collectives, disconnected channels — and
//! case-setup validation failures all surface as [`OversetError`]. Panics
//! remain only for internal invariant violations (e.g. a rank index that
//! was validated before the run).

use crate::wire::{intern, Wire, WireError, WireReader};
use std::fmt;

/// Errors surfaced by the runtime, the case setup and the benchmark tools.
#[derive(Clone, Debug, PartialEq)]
pub enum OversetError {
    /// `recv` matched a message whose payload is not the requested type.
    TypeMismatch { rank: usize, src: usize, tag: u64, expected: &'static str },
    /// A message arrived over a process transport but its bytes failed to
    /// decode as the requested type.
    WireDecode { rank: usize, src: usize, tag: u64, detail: String },
    /// A receive could never complete: every sender hung up.
    Disconnected { rank: usize, src: usize, tag: u64 },
    /// Ranks contributed different types to one collective round.
    CollectiveMismatch { rank: usize, expected: &'static str },
    /// A message was addressed to a rank outside the universe.
    InvalidRank { rank: usize, dst: usize, size: usize },
    /// A rank's body panicked during the run; peers were unblocked and the
    /// universe shut down. `phase` names the statistics phase the rank was
    /// in when it panicked.
    RankPanicked { rank: usize, phase: &'static str, message: String },
    /// This rank was blocked in a communication call when `failed_rank`
    /// panicked; the wait was abandoned so the universe could shut down.
    AbortedByPeer { rank: usize, failed_rank: usize },
    /// Case/topology validation failed before the run started.
    Setup(String),
    /// Invalid run configuration (rank counts, thresholds, CLI arguments).
    Config(String),
    /// Filesystem failure (trace export and friends).
    Io(String),
}

impl fmt::Display for OversetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OversetError::TypeMismatch { rank, src, tag, expected } => write!(
                f,
                "rank {rank}: type mismatch receiving tag {tag} from rank {src} (expected {expected})"
            ),
            OversetError::WireDecode { rank, src, tag, detail } => write!(
                f,
                "rank {rank}: wire decode failed for tag {tag} from rank {src}: {detail}"
            ),
            OversetError::Disconnected { rank, src, tag } => write!(
                f,
                "rank {rank}: all senders disconnected while waiting for tag {tag} from rank {src}"
            ),
            OversetError::CollectiveMismatch { rank, expected } => write!(
                f,
                "rank {rank}: mixed payload types in collective (expected {expected})"
            ),
            OversetError::InvalidRank { rank, dst, size } => {
                write!(f, "rank {rank}: send to rank {dst} of a {size}-rank universe")
            }
            OversetError::RankPanicked { rank, phase, message } => {
                write!(f, "rank {rank} panicked in phase {phase}: {message}")
            }
            OversetError::AbortedByPeer { rank, failed_rank } => write!(
                f,
                "rank {rank}: communication aborted because rank {failed_rank} panicked"
            ),
            OversetError::Setup(msg) => write!(f, "setup error: {msg}"),
            OversetError::Config(msg) => write!(f, "config error: {msg}"),
            OversetError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for OversetError {}

impl From<std::io::Error> for OversetError {
    fn from(e: std::io::Error) -> Self {
        OversetError::Io(e.to_string())
    }
}

// Errors cross process boundaries (rank programs may return
// `Result<_, OversetError>`, and the parent relays child failures), so the
// error type itself is a wire type. `&'static str` fields are re-interned
// on decode.
impl Wire for OversetError {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OversetError::TypeMismatch { rank, src, tag, expected } => {
                buf.push(0);
                rank.encode(buf);
                src.encode(buf);
                tag.encode(buf);
                expected.to_string().encode(buf);
            }
            OversetError::WireDecode { rank, src, tag, detail } => {
                buf.push(1);
                rank.encode(buf);
                src.encode(buf);
                tag.encode(buf);
                detail.encode(buf);
            }
            OversetError::Disconnected { rank, src, tag } => {
                buf.push(2);
                rank.encode(buf);
                src.encode(buf);
                tag.encode(buf);
            }
            OversetError::CollectiveMismatch { rank, expected } => {
                buf.push(3);
                rank.encode(buf);
                expected.to_string().encode(buf);
            }
            OversetError::InvalidRank { rank, dst, size } => {
                buf.push(4);
                rank.encode(buf);
                dst.encode(buf);
                size.encode(buf);
            }
            OversetError::RankPanicked { rank, phase, message } => {
                buf.push(5);
                rank.encode(buf);
                phase.to_string().encode(buf);
                message.encode(buf);
            }
            OversetError::AbortedByPeer { rank, failed_rank } => {
                buf.push(6);
                rank.encode(buf);
                failed_rank.encode(buf);
            }
            OversetError::Setup(msg) => {
                buf.push(7);
                msg.encode(buf);
            }
            OversetError::Config(msg) => {
                buf.push(8);
                msg.encode(buf);
            }
            OversetError::Io(msg) => {
                buf.push(9);
                msg.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => OversetError::TypeMismatch {
                rank: usize::decode(r)?,
                src: usize::decode(r)?,
                tag: u64::decode(r)?,
                expected: intern(&String::decode(r)?),
            },
            1 => OversetError::WireDecode {
                rank: usize::decode(r)?,
                src: usize::decode(r)?,
                tag: u64::decode(r)?,
                detail: String::decode(r)?,
            },
            2 => OversetError::Disconnected {
                rank: usize::decode(r)?,
                src: usize::decode(r)?,
                tag: u64::decode(r)?,
            },
            3 => OversetError::CollectiveMismatch {
                rank: usize::decode(r)?,
                expected: intern(&String::decode(r)?),
            },
            4 => OversetError::InvalidRank {
                rank: usize::decode(r)?,
                dst: usize::decode(r)?,
                size: usize::decode(r)?,
            },
            5 => OversetError::RankPanicked {
                rank: usize::decode(r)?,
                phase: intern(&String::decode(r)?),
                message: String::decode(r)?,
            },
            6 => OversetError::AbortedByPeer {
                rank: usize::decode(r)?,
                failed_rank: usize::decode(r)?,
            },
            7 => OversetError::Setup(String::decode(r)?),
            8 => OversetError::Config(String::decode(r)?),
            9 => OversetError::Io(String::decode(r)?),
            _ => return Err(WireError::Invalid("OversetError discriminant")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OversetError::TypeMismatch { rank: 3, src: 1, tag: 42, expected: "f64" };
        let s = e.to_string();
        assert!(s.contains("rank 3") && s.contains("tag 42") && s.contains("f64"));
        let e = OversetError::Setup("no grids".into());
        assert!(e.to_string().contains("no grids"));
    }

    #[test]
    fn wire_roundtrip_every_variant() {
        let variants = vec![
            OversetError::TypeMismatch { rank: 1, src: 2, tag: 3, expected: "f64" },
            OversetError::WireDecode { rank: 1, src: 2, tag: 3, detail: "bad".into() },
            OversetError::Disconnected { rank: 1, src: 2, tag: 3 },
            OversetError::CollectiveMismatch { rank: 4, expected: "u64" },
            OversetError::InvalidRank { rank: 0, dst: 9, size: 4 },
            OversetError::RankPanicked { rank: 2, phase: "flow", message: "boom".into() },
            OversetError::AbortedByPeer { rank: 1, failed_rank: 2 },
            OversetError::Setup("s".into()),
            OversetError::Config("c".into()),
            OversetError::Io("i".into()),
        ];
        for e in variants {
            let back = OversetError::from_wire_bytes(&e.to_wire_bytes()).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: OversetError = io.into();
        assert!(matches!(e, OversetError::Io(_)));
    }
}
