//! Workspace-wide error type (hand-rolled thiserror-style, no deps).
//!
//! Protocol-level failures that used to panic inside the runtime —
//! mistyped receives, mixed-type collectives, disconnected channels — and
//! case-setup validation failures all surface as [`OversetError`]. Panics
//! remain only for internal invariant violations (e.g. a rank index that
//! was validated before the run).

use std::fmt;

/// Errors surfaced by the runtime, the case setup and the benchmark tools.
#[derive(Clone, Debug, PartialEq)]
pub enum OversetError {
    /// `recv` matched a message whose payload is not the requested type.
    TypeMismatch { rank: usize, src: usize, tag: u64, expected: &'static str },
    /// A receive could never complete: every sender hung up.
    Disconnected { rank: usize, src: usize, tag: u64 },
    /// Ranks contributed different types to one collective round.
    CollectiveMismatch { rank: usize, expected: &'static str },
    /// A message was addressed to a rank outside the universe.
    InvalidRank { rank: usize, dst: usize, size: usize },
    /// A rank's body panicked during the run; peers were unblocked and the
    /// universe shut down. `phase` names the statistics phase the rank was
    /// in when it panicked.
    RankPanicked { rank: usize, phase: &'static str, message: String },
    /// This rank was blocked in a communication call when `failed_rank`
    /// panicked; the wait was abandoned so the universe could shut down.
    AbortedByPeer { rank: usize, failed_rank: usize },
    /// Case/topology validation failed before the run started.
    Setup(String),
    /// Invalid run configuration (rank counts, thresholds, CLI arguments).
    Config(String),
    /// Filesystem failure (trace export and friends).
    Io(String),
}

impl fmt::Display for OversetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OversetError::TypeMismatch { rank, src, tag, expected } => write!(
                f,
                "rank {rank}: type mismatch receiving tag {tag} from rank {src} (expected {expected})"
            ),
            OversetError::Disconnected { rank, src, tag } => write!(
                f,
                "rank {rank}: all senders disconnected while waiting for tag {tag} from rank {src}"
            ),
            OversetError::CollectiveMismatch { rank, expected } => write!(
                f,
                "rank {rank}: mixed payload types in collective (expected {expected})"
            ),
            OversetError::InvalidRank { rank, dst, size } => {
                write!(f, "rank {rank}: send to rank {dst} of a {size}-rank universe")
            }
            OversetError::RankPanicked { rank, phase, message } => {
                write!(f, "rank {rank} panicked in phase {phase}: {message}")
            }
            OversetError::AbortedByPeer { rank, failed_rank } => write!(
                f,
                "rank {rank}: communication aborted because rank {failed_rank} panicked"
            ),
            OversetError::Setup(msg) => write!(f, "setup error: {msg}"),
            OversetError::Config(msg) => write!(f, "config error: {msg}"),
            OversetError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for OversetError {}

impl From<std::io::Error> for OversetError {
    fn from(e: std::io::Error) -> Self {
        OversetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OversetError::TypeMismatch { rank: 3, src: 1, tag: 42, expected: "f64" };
        let s = e.to_string();
        assert!(s.contains("rank 3") && s.contains("tag 42") && s.contains("f64"));
        let e = OversetError::Setup("no grids".into());
        assert!(e.to_string().contains("no grids"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: OversetError = io.into();
        assert!(matches!(e, OversetError::Io(_)));
    }
}
