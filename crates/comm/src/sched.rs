//! M:N cooperative scheduling: many virtual ranks on a bounded worker pool.
//!
//! Each virtual rank runs on its own coroutine stack. Wherever a rank would
//! block on host synchronization (a `recv` with no matching message, a
//! collective rendezvous, `end_step`), it *yields* back to the worker thread
//! hosting it instead of blocking the OS thread, so a 512–4096-rank universe
//! runs on a handful of cores. Ranks are pinned to workers
//! (`rank % nworkers`): a rank's coroutine only ever executes on its owner,
//! and waking rank `r` means enqueueing `r` on the owner's inbox.
//!
//! The context switch is a hand-rolled x86-64 System V stackful switch (the
//! build environment has no coroutine crates): callee-saved registers are
//! pushed on the suspending stack, stack pointers swapped, and the resuming
//! stack's registers popped. Unwinding never crosses the switch boundary —
//! the runtime wraps every rank body in `catch_unwind` *inside* the
//! coroutine, and [`coro_main`] aborts the process if a panic somehow
//! escapes that net.
//!
//! None of this affects virtual time: receives are (src, tag)-addressed and
//! collective results are rank-indexed, so clocks are bit-identical to the
//! rank-per-thread mode regardless of interleaving.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Default coroutine stack size (matches the Rust default thread stack).
pub(crate) const DEFAULT_STACK_SIZE: usize = 2 * 1024 * 1024;

/// Is the M:N scheduler available on this target? The context switch is
/// x86-64-only; elsewhere the builder falls back to rank-per-thread.
pub(crate) const MN_AVAILABLE: bool = cfg!(target_arch = "x86_64");

// ---- context switch (x86-64 System V) ----------------------------------

#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    // overset_ctx_switch(save: *mut *mut u8 [rdi], restore_rsp: *mut u8 [rsi])
    //
    // Saves the callee-saved register file and stack pointer of the calling
    // context into `*save`, then resumes the context whose saved stack
    // pointer is `restore_rsp`. Returns (in the resumed context) to whoever
    // suspended it — or, for a fresh stack, "returns" into
    // `overset_ctx_entry`, which calls `coro_main(r12)`.
    ".hidden overset_ctx_switch",
    ".global overset_ctx_switch",
    ".p2align 4",
    "overset_ctx_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".hidden overset_ctx_entry",
    ".global overset_ctx_entry",
    ".p2align 4",
    "overset_ctx_entry:",
    "mov rdi, r12",
    "call r13",
    "ud2",
);

#[cfg(target_arch = "x86_64")]
extern "C" {
    fn overset_ctx_switch(save: *mut *mut u8, restore_rsp: *mut u8);
    /// Never called from Rust — its address seeds fresh coroutine stacks.
    fn overset_ctx_entry();
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn overset_ctx_switch(_save: *mut *mut u8, _restore_rsp: *mut u8) {
    unreachable!("M:N scheduling is x86-64 only (MN_AVAILABLE is false)");
}

// ---- coroutine stacks ---------------------------------------------------

struct StackMem {
    ptr: *mut u8,
    layout: std::alloc::Layout,
}

impl StackMem {
    fn new(size: usize) -> StackMem {
        // Keep at least room for the runtime's own frames, and a multiple of
        // 16 so the top stays aligned. Pages are committed lazily by the OS,
        // so a big virtual reservation per rank is cheap.
        let size = size.max(64 * 1024) & !15usize;
        let layout = std::alloc::Layout::from_size_align(size, 16).expect("stack layout");
        let ptr = unsafe { std::alloc::alloc(layout) };
        assert!(!ptr.is_null(), "coroutine stack allocation failed ({size} bytes)");
        StackMem { ptr, layout }
    }

    fn top(&self) -> *mut u8 {
        unsafe { self.ptr.add(self.layout.size()) }
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr, self.layout) }
    }
}

/// One virtual rank's coroutine: its stack, its saved stack pointer while
/// suspended, and the task it runs. Owned by exactly one worker; never
/// migrates, so the raw pointers inside are single-threaded at any moment.
pub(crate) struct Coro {
    stack: StackMem,
    /// Saved stack pointer while suspended; null until the first resume
    /// seeds the entry frame (the `Coro` must be at its final address when
    /// the frame captures `self`, so seeding is deferred out of `new`).
    rsp: *mut u8,
    task: Option<Box<dyn FnOnce() + Send + 'static>>,
    /// This rank's allocator-attribution context while suspended. Saved and
    /// restored around every switch so a mid-phase yield never leaks the
    /// next coroutine's allocations into this rank's counters (or vice
    /// versa) — see [`crate::alloc`].
    alloc_ctx: crate::alloc::SavedCtx,
    pub(crate) finished: bool,
    pub(crate) rank: usize,
}

// The raw pointers are private to the owning worker thread.
unsafe impl Send for Coro {}

impl Coro {
    pub(crate) fn new(
        rank: usize,
        stack_size: usize,
        task: Box<dyn FnOnce() + Send + 'static>,
    ) -> Coro {
        Coro {
            stack: StackMem::new(stack_size),
            rsp: std::ptr::null_mut(),
            task: Some(task),
            alloc_ctx: crate::alloc::SavedCtx::EMPTY,
            finished: false,
            rank,
        }
    }
}

/// Entry point executed on a fresh coroutine stack (reached through
/// `overset_ctx_entry` with `c` in `r12`). Never returns: after the task
/// completes it marks the coroutine finished and yields forever (a wake
/// aimed at a finished rank resumes the loop, which immediately yields
/// back).
#[cfg(target_arch = "x86_64")]
unsafe extern "C" fn coro_main(c: *mut Coro) {
    let task = (*c).task.take().expect("coroutine resumed before seeding");
    // The runtime catches rank-body panics inside `task`; if one still
    // escapes, unwinding must not reach the assembly frame below us.
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
        eprintln!("[overset-comm] fatal: panic escaped a virtual-rank task");
        std::process::abort();
    }
    (*c).finished = true;
    loop {
        mn_yield();
    }
}

/// Where a yielding coroutine saves itself and finds its hosting worker.
#[derive(Clone, Copy)]
struct YieldTarget {
    /// Slot for the coroutine's stack pointer (`&mut coro.rsp`).
    save: *mut *mut u8,
    /// The worker's saved stack pointer, written by the switch into the
    /// coroutine (points at a local in [`run_coro`]'s frame).
    worker_rsp: *const *mut u8,
}

thread_local! {
    static YIELD: std::cell::Cell<Option<YieldTarget>> = const { std::cell::Cell::new(None) };
}

/// Suspend the current virtual rank and return control to its worker.
/// Must only be called from inside a coroutine (the runtime guarantees
/// this: only M:N-mode comm waits and `end_step` reach it).
pub(crate) fn mn_yield() {
    let t = YIELD.with(|y| y.get()).expect("mn_yield outside a virtual-rank coroutine");
    unsafe { overset_ctx_switch(t.save, *t.worker_rsp) };
}

/// Resume `coro` until it yields or finishes. `coro` must be owned by the
/// calling worker and not currently running.
unsafe fn run_coro(coro: *mut Coro) {
    if (*coro).rsp.is_null() {
        // First resume: seed the stack with a frame that "returns" into
        // `overset_ctx_entry` with callee-saved registers r12 = coro,
        // r13 = coro_main. Slot order matches the pop sequence in
        // `overset_ctx_switch`: r15 r14 r13 r12 rbx rbp, then `ret`.
        #[cfg(target_arch = "x86_64")]
        {
            let sp = (*coro).stack.top().sub(7 * 8) as *mut usize;
            sp.add(0).write(0); // r15
            sp.add(1).write(0); // r14
            sp.add(2).write(coro_main as *const () as usize); // r13
            sp.add(3).write(coro as usize); // r12
            sp.add(4).write(0); // rbx
            sp.add(5).write(0); // rbp
            sp.add(6).write(overset_ctx_entry as *const () as usize); // return address
            (*coro).rsp = sp as *mut u8;
        }
    }
    let mut worker_rsp: *mut u8 = std::ptr::null_mut();
    let save = std::ptr::addr_of_mut!((*coro).rsp);
    YIELD.with(|y| y.set(Some(YieldTarget { save, worker_rsp: &worker_rsp })));
    // Swap in the coroutine's allocator-attribution context for the duration
    // of its slice; the worker's own context (normally empty) is held across
    // the switch and restored — with the coroutine's current context saved
    // back into it — when the coroutine yields or finishes.
    let worker_ctx = crate::alloc::swap_ctx((*coro).alloc_ctx);
    overset_ctx_switch(&mut worker_rsp, *save);
    (*coro).alloc_ctx = crate::alloc::swap_ctx(worker_ctx);
    YIELD.with(|y| y.set(None));
}

// ---- worker pool --------------------------------------------------------

struct Inbox {
    q: Mutex<Vec<usize>>,
    cv: Condvar,
}

/// Wakeup fabric shared by the runtime and the workers: per-worker inboxes
/// of global rank indices. Waking a rank enqueues it on its owner's inbox;
/// the owner drains the inbox whenever it runs out of ready coroutines.
/// Spurious wakes are harmless — every parked rank re-checks its predicate
/// on resume — so wake-before-park races resolve to an extra resume, never
/// a lost wakeup.
pub(crate) struct MnShared {
    inboxes: Vec<Inbox>,
    nworkers: usize,
}

impl MnShared {
    pub(crate) fn new(nworkers: usize) -> MnShared {
        assert!(nworkers >= 1);
        MnShared {
            inboxes: (0..nworkers)
                .map(|_| Inbox { q: Mutex::new(Vec::new()), cv: Condvar::new() })
                .collect(),
            nworkers,
        }
    }

    pub(crate) fn nworkers(&self) -> usize {
        self.nworkers
    }

    /// Make rank `rank` runnable again on its owning worker.
    pub(crate) fn wake(&self, rank: usize) {
        let ib = &self.inboxes[rank % self.nworkers];
        ib.q.lock().expect("inbox poisoned").push(rank);
        ib.cv.notify_one();
    }
}

/// A worker's main loop: run every owned coroutine that is ready, park on
/// the inbox when none are, exit when all owned coroutines finished.
/// `coros` holds this worker's ranks in ascending rank order (rank
/// `widx + k·nworkers` at index `k`), which is also the initial run order —
/// part of keeping M:N behavior deterministic enough to debug, even though
/// virtual time never depends on it.
pub(crate) fn worker_loop(
    widx: usize,
    shared: &MnShared,
    mut coros: Vec<Coro>,
    watchdog: Option<Duration>,
) {
    let nw = shared.nworkers;
    let mut live = coros.len();
    let mut ready: VecDeque<usize> = (0..coros.len()).collect();
    let base = coros.as_mut_ptr();
    while live > 0 {
        while let Some(li) = ready.pop_front() {
            let c = unsafe { base.add(li) };
            debug_assert_eq!(
                unsafe { (*c).rank } % nw,
                widx,
                "coroutine scheduled on the wrong worker"
            );
            if unsafe { (*c).finished } {
                continue; // late wake aimed at a completed rank
            }
            unsafe { run_coro(c) };
            if unsafe { (*c).finished } {
                live -= 1;
            }
        }
        if live == 0 {
            break;
        }
        let ib = &shared.inboxes[widx];
        let mut q = ib.q.lock().expect("inbox poisoned");
        loop {
            if !q.is_empty() {
                ready.extend(q.drain(..).map(|r| {
                    debug_assert_eq!(r % nw, widx, "rank {r} woken on wrong worker");
                    r / nw
                }));
                break;
            }
            match watchdog {
                None => q = ib.cv.wait(q).expect("inbox poisoned"),
                Some(period) => {
                    let (g, to) = ib.cv.wait_timeout(q, period).expect("inbox poisoned");
                    q = g;
                    if to.timed_out() {
                        eprintln!(
                            "[overset-comm watchdog] worker {widx} idle with {live} unfinished \
                             virtual ranks parked"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn coroutine_switches_roundtrip() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let mut coros = vec![Coro::new(
            0,
            DEFAULT_STACK_SIZE,
            Box::new(move || {
                for _ in 0..3 {
                    n2.fetch_add(1, Ordering::SeqCst);
                    mn_yield();
                }
            }),
        )];
        let c = coros.as_mut_ptr();
        for expect in 1..=3 {
            unsafe { run_coro(c) };
            assert_eq!(n.load(Ordering::SeqCst), expect);
            assert!(!coros[0].finished);
        }
        unsafe { run_coro(c) };
        assert!(coros[0].finished);
        assert_eq!(n.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_runs_interleaved_coroutines() {
        // Two coroutines on one worker appending to a shared log across
        // yields: the worker must interleave them via self-wakes.
        let log = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::new(MnShared::new(1));
        let coros: Vec<Coro> = (0..2)
            .map(|rank| {
                let log = Arc::clone(&log);
                let shared = Arc::clone(&shared);
                Coro::new(
                    rank,
                    DEFAULT_STACK_SIZE,
                    Box::new(move || {
                        for round in 0..3 {
                            log.lock().unwrap().push((rank, round));
                            shared.wake(rank); // self-wake: round-robin yield
                            mn_yield();
                        }
                    }),
                )
            })
            .collect();
        worker_loop(0, &shared, coros, None);
        let got = log.lock().unwrap().clone();
        assert_eq!(got.len(), 6);
        // Strict alternation: each rank's rounds in order, interleaved.
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]);
    }
}
