//! The rank runtime: a MIMD distributed-memory message-passing environment
//! in which each rank is an OS thread owning only its own data, exchanging
//! typed messages over channels, with a deterministic *virtual clock* per
//! rank driven by a [`MachineModel`].
//!
//! Virtual-time rules:
//!
//! * `compute(flops, class)` advances the local clock by `flops / rate`,
//! * `send` charges the sender a CPU overhead and stamps the message with
//!   its (virtual) send time; the message becomes available at
//!   `send_time + latency + bytes/bandwidth`,
//! * `recv` advances the local clock to at least the arrival time,
//! * collectives synchronize every clock to the round maximum plus a
//!   log₂(P) collective cost.
//!
//! Determinism: all protocols in this workspace receive from explicit
//! (source, tag) pairs or collectives, never "whichever message lands
//! first", so virtual times are bit-reproducible run to run regardless of
//! wall-clock thread scheduling.

use crate::machine::{MachineModel, WorkClass};
use crate::stats::{Phase, RankStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::Arc;

struct Envelope {
    src: usize,
    tag: u64,
    /// Virtual time at which the message is fully available at the receiver.
    arrival: f64,
    payload: Box<dyn Any + Send>,
}

struct CollInner {
    generation: u64,
    arrived: usize,
    max_clock: f64,
    slots: Vec<Option<Box<dyn Any + Send>>>,
    published: Option<Arc<dyn Any + Send + Sync>>,
    published_clock: f64,
    readers_left: usize,
}

struct Collective {
    m: Mutex<CollInner>,
    cv: Condvar,
}

impl Collective {
    fn new(n: usize) -> Self {
        Collective {
            m: Mutex::new(CollInner {
                generation: 0,
                arrived: 0,
                max_clock: f64::NEG_INFINITY,
                slots: (0..n).map(|_| None).collect(),
                published: None,
                published_clock: 0.0,
                readers_left: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Per-rank communicator handle. Created by [`Universe::run`]; owns the
/// rank's virtual clock, statistics, and channel endpoints.
pub struct Comm {
    rank: usize,
    size: usize,
    machine: Arc<MachineModel>,
    clock: f64,
    working_set_bytes: f64,
    txs: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    pending: Vec<Envelope>,
    coll: Arc<Collective>,
    coll_gen: u64,
    stats: RankStats,
    phase: Phase,
    phase_start: f64,
}

impl Comm {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    #[inline]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Current virtual time, seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Set the per-rank working set used by the cache model (bytes).
    pub fn set_working_set(&mut self, bytes: f64) {
        self.working_set_bytes = bytes;
    }

    /// Switch statistics phase; time accrues to the phase that was active.
    pub fn set_phase(&mut self, phase: Phase) {
        let elapsed = self.clock - self.phase_start;
        self.stats.time[self.phase as usize] += elapsed;
        self.phase = phase;
        self.phase_start = self.clock;
    }

    /// Account `flops` of `class` compute work: advances the virtual clock
    /// and the flop counters.
    pub fn compute(&mut self, flops: f64, class: WorkClass) {
        debug_assert!(flops >= 0.0);
        let dt = self.machine.compute_time(flops, class, self.working_set_bytes);
        self.clock += dt;
        self.stats.flops[self.phase as usize] += flops;
    }

    /// Advance the clock without doing flops (e.g. fixed overheads).
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
    }

    /// Send `payload` (logical size `bytes`) to `dst` with a message `tag`.
    /// Non-blocking (asynchronous send, as DCF3D's search requests are).
    pub fn send<T: Send + 'static>(&mut self, dst: usize, tag: u64, payload: T, bytes: usize) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        self.clock += self.machine.send_overhead;
        let arrival = self.clock + self.machine.transit_time(bytes);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.txs[dst]
            .send(Envelope { src: self.rank, tag, arrival, payload: Box::new(payload) })
            .expect("receiver hung up");
    }

    /// Blocking receive of a message of type `T` from `src` with `tag`.
    /// Advances the clock to at least the message arrival time.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: u64) -> T {
        let env = self.take_matching(src, tag);
        self.clock = self.clock.max(env.arrival);
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving tag {tag} from {src}",
                self.rank
            )
        })
    }

    fn take_matching(&mut self, src: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.pending.iter().position(|e| e.src == src && e.tag == tag) {
            // Order-preserving removal: multiple buffered messages with the
            // same (src, tag) must be consumed FIFO (e.g. pipelined line
            // chunks).
            return self.pending.remove(pos);
        }
        loop {
            let env = self.rx.recv().expect("all senders disconnected");
            if env.src == src && env.tag == tag {
                return env;
            }
            self.pending.push(env);
        }
    }

    /// Synchronize all ranks: everyone leaves with the same clock (round max
    /// plus the collective cost).
    pub fn barrier(&mut self) {
        let _: Vec<u8> = self.allgather(0u8, 8);
    }

    /// All-gather: every rank contributes `value` (logical size `bytes`) and
    /// receives the vector of all contributions indexed by rank.
    pub fn allgather<T: Clone + Send + Sync + 'static>(&mut self, value: T, bytes: usize) -> Vec<T> {
        let gen = self.coll_gen;
        self.coll_gen += 1;
        let coll = Arc::clone(&self.coll);
        let mut inner = coll.m.lock();
        // Wait for our round to open (previous round fully consumed).
        while inner.generation != gen {
            self.coll.cv.wait(&mut inner);
        }
        inner.slots[self.rank] = Some(Box::new(value));
        inner.arrived += 1;
        inner.max_clock = inner.max_clock.max(self.clock);
        if inner.arrived == self.size {
            // Last arriver gathers and publishes.
            let gathered: Vec<T> = inner
                .slots
                .iter_mut()
                .map(|s| *s.take().expect("missing slot").downcast::<T>().expect("mixed types in collective"))
                .collect();
            inner.published = Some(Arc::new(gathered));
            inner.published_clock = inner.max_clock;
            inner.readers_left = self.size;
            inner.arrived = 0;
            inner.max_clock = f64::NEG_INFINITY;
            self.coll.cv.notify_all();
        } else {
            while inner.published.is_none() || inner.generation != gen {
                self.coll.cv.wait(&mut inner);
            }
        }
        let arc = inner.published.clone().expect("published result");
        let round_clock = inner.published_clock;
        inner.readers_left -= 1;
        if inner.readers_left == 0 {
            inner.published = None;
            inner.generation = gen + 1;
            self.coll.cv.notify_all();
        }
        drop(inner);
        let result = arc
            .downcast::<Vec<T>>()
            .expect("collective type mismatch")
            .as_ref()
            .clone();
        self.clock = round_clock + self.machine.collective_time(self.size, bytes * self.size);
        self.stats.collectives += 1;
        result
    }

    /// All-reduce max over f64.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        self.allgather(value, 8).into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// All-reduce sum over f64.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allgather(value, 8).into_iter().sum()
    }

    /// All-reduce sum over usize.
    pub fn allreduce_sum_usize(&mut self, value: usize) -> usize {
        self.allgather(value, 8).into_iter().sum()
    }

    /// Finalize statistics (closes the open phase) and return them.
    fn finish(mut self) -> RankStats {
        let phase = self.phase;
        self.set_phase(phase); // flush elapsed time into the current bucket
        self.stats.final_clock = self.clock;
        self.stats
    }
}

/// Result of one rank's execution under [`Universe::run`].
#[derive(Clone, Debug)]
pub struct RankOutput<R> {
    pub result: R,
    pub stats: RankStats,
}

/// The simulated parallel machine: spawns `nranks` rank threads and runs the
/// same SPMD closure on each.
pub struct Universe;

impl Universe {
    /// Run `f` on `nranks` ranks of `machine`. Returns per-rank outputs in
    /// rank order. Panics in any rank propagate.
    pub fn run<R, F>(nranks: usize, machine: &MachineModel, f: F) -> Vec<RankOutput<R>>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        assert!(nranks >= 1);
        let machine = Arc::new(machine.clone());
        let mut txs = Vec::with_capacity(nranks);
        let mut rxs = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }
        let coll = Arc::new(Collective::new(nranks));
        let f = &f;
        let mut outputs: Vec<Option<RankOutput<R>>> = (0..nranks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let txs = txs.clone();
                    let machine = Arc::clone(&machine);
                    let coll = Arc::clone(&coll);
                    s.spawn(move || {
                        let mut comm = Comm {
                            rank,
                            size: nranks,
                            machine,
                            clock: 0.0,
                            working_set_bytes: 0.0,
                            txs,
                            rx,
                            pending: Vec::new(),
                            coll,
                            coll_gen: 0,
                            stats: RankStats::new(rank),
                            phase: Phase::Other,
                            phase_start: 0.0,
                        };
                        let result = f(&mut comm);
                        RankOutput { result, stats: comm.finish() }
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                outputs[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });
        drop(txs);
        outputs.into_iter().map(|o| o.expect("missing rank output")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modern() -> MachineModel {
        MachineModel::modern()
    }

    #[test]
    fn single_rank_compute_time() {
        let m = MachineModel {
            name: "t",
            flops_per_sec: 100.0,
            class_efficiency: [1.0, 0.5, 1.0],
            cache: crate::machine::CacheModel::FLAT,
            latency: 0.0,
            bandwidth: 1.0,
            send_overhead: 0.0,
        };
        let out = Universe::run(1, &m, |c| {
            c.compute(50.0, WorkClass::Flow);
            c.compute(50.0, WorkClass::Search);
            c.now()
        });
        assert!((out[0].result - (0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_times_are_deterministic() {
        let m = modern();
        let run = || {
            Universe::run(2, &m, |c| {
                if c.rank() == 0 {
                    c.send(1, 7, 42.0f64, 1024);
                    c.recv::<f64>(1, 8)
                } else {
                    let v = c.recv::<f64>(0, 7);
                    c.send(0, 8, v * 2.0, 1024);
                    v
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a[0].result, 84.0);
        assert_eq!(a[0].stats.final_clock.to_bits(), b[0].stats.final_clock.to_bits());
        assert_eq!(a[1].stats.final_clock.to_bits(), b[1].stats.final_clock.to_bits());
        // Receiver clock includes transit time.
        assert!(a[1].stats.final_clock >= m.transit_time(1024));
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let m = modern();
        let out = Universe::run(4, &m, |c| {
            // Rank r does r units of work, then a barrier.
            c.compute(1.0e9 * c.rank() as f64, WorkClass::Flow);
            c.barrier();
            c.now()
        });
        let clocks: Vec<f64> = out.iter().map(|o| o.result).collect();
        for w in clocks.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-15, "clocks differ: {clocks:?}");
        }
        // Barrier clock at least the slowest rank's work time.
        let slowest = m.compute_time(3.0e9, WorkClass::Flow, 0.0);
        assert!(clocks[0] >= slowest);
    }

    #[test]
    fn allgather_returns_rank_ordered_values() {
        let out = Universe::run(5, &modern(), |c| {
            let v = c.allgather(c.rank() * 10, 8);
            v
        });
        for o in &out {
            assert_eq!(o.result, vec![0, 10, 20, 30, 40]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_cross() {
        let out = Universe::run(3, &modern(), |c| {
            let mut acc = Vec::new();
            for round in 0..50u64 {
                let v = c.allgather(round * 100 + c.rank() as u64, 8);
                acc.push(v.iter().sum::<u64>());
            }
            acc
        });
        for o in &out {
            for (round, &s) in o.result.iter().enumerate() {
                assert_eq!(s, 300 * round as u64 + 3);
            }
        }
    }

    #[test]
    fn allreduce_ops() {
        let out = Universe::run(4, &modern(), |c| {
            (
                c.allreduce_max(c.rank() as f64),
                c.allreduce_sum(1.5),
                c.allreduce_sum_usize(c.rank()),
            )
        });
        for o in &out {
            assert_eq!(o.result.0, 3.0);
            assert!((o.result.1 - 6.0).abs() < 1e-12);
            assert_eq!(o.result.2, 6);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Universe::run(2, &modern(), |c| {
            if c.rank() == 0 {
                c.send(1, 1, 10i32, 4);
                c.send(1, 2, 20i32, 4);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv::<i32>(0, 2);
                let a = c.recv::<i32>(0, 1);
                a + b * 100
            }
        });
        assert_eq!(out[1].result, 2010);
    }

    #[test]
    fn phase_accounting() {
        let m = MachineModel {
            name: "t",
            flops_per_sec: 1.0,
            class_efficiency: [1.0; 3],
            cache: crate::machine::CacheModel::FLAT,
            latency: 0.0,
            bandwidth: 1.0,
            send_overhead: 0.0,
        };
        let out = Universe::run(1, &m, |c| {
            c.set_phase(Phase::Flow);
            c.compute(2.0, WorkClass::Flow);
            c.set_phase(Phase::Connectivity);
            c.compute(3.0, WorkClass::Search);
            c.set_phase(Phase::Other);
        });
        let s = &out[0].stats;
        assert!((s.time[Phase::Flow as usize] - 2.0).abs() < 1e-12);
        assert!((s.time[Phase::Connectivity as usize] - 3.0).abs() < 1e-12);
        assert!((s.flops[Phase::Flow as usize] - 2.0).abs() < 1e-12);
        assert!((s.total_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn message_stats_counted() {
        let out = Universe::run(2, &modern(), |c| {
            if c.rank() == 0 {
                c.send(1, 0, (), 500);
                c.send(1, 1, (), 700);
            } else {
                c.recv::<()>(0, 0);
                c.recv::<()>(0, 1);
            }
        });
        assert_eq!(out[0].stats.msgs_sent, 2);
        assert_eq!(out[0].stats.bytes_sent, 1200);
        assert_eq!(out[1].stats.msgs_sent, 0);
    }

    #[test]
    fn working_set_changes_rate() {
        let m = MachineModel::ibm_sp2();
        let out = Universe::run(1, &m, |c| {
            c.set_working_set(1.0); // tiny: fast cache factor
            c.compute(1.0e6, WorkClass::Flow);
            let t_small = c.now();
            c.set_working_set(1e9); // huge: memory bound
            c.compute(1.0e6, WorkClass::Flow);
            (t_small, c.now() - t_small)
        });
        let (t_small, t_large) = out[0].result;
        assert!(t_large > 1.3 * t_small, "cache model had no effect");
    }
}
