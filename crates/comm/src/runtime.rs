//! The rank runtime: a MIMD distributed-memory message-passing environment
//! in which each rank owns only its own data, exchanging typed messages
//! through per-rank mailboxes, with a deterministic *virtual clock* per
//! rank driven by a [`MachineModel`].
//!
//! Two scheduler modes execute the ranks:
//!
//! * **1:1 (default)** — one OS thread per rank; blocking waits park on a
//!   condvar.
//! * **M:N** ([`UniverseBuilder::max_threads`]) — ranks run as cooperative
//!   coroutines multiplexed onto a bounded worker pool, yielding back to
//!   their worker at every communication point (`recv` with no matching
//!   message, collective rendezvous, [`Comm::end_step`]). This is how a
//!   512–4096-rank universe runs on a handful of host cores.
//!
//! Virtual-time rules:
//!
//! * `compute(flops, class)` advances the local clock by `flops / rate`,
//! * `send` charges the sender a CPU overhead and stamps the message with
//!   its (virtual) send time; the message becomes available at
//!   `send_time + latency + bytes/bandwidth`,
//! * `recv` advances the local clock to at least the arrival time,
//! * collectives synchronize every clock to the round maximum plus a
//!   log₂(P) collective cost.
//!
//! Determinism: all protocols in this workspace receive from explicit
//! (source, tag) pairs or collectives, never "whichever message lands
//! first", so virtual times are bit-reproducible run to run regardless of
//! wall-clock thread scheduling — and bit-identical between the two
//! scheduler modes for the same configuration.
//!
//! Failure handling: a panic in a rank body is caught on that rank, every
//! peer blocked in a communication call is woken and unblocked with
//! [`OversetError::AbortedByPeer`], and the run returns
//! [`OversetError::RankPanicked`] naming the failing rank and the
//! statistics phase it was in ([`UniverseBuilder::try_run`] surfaces it as
//! an error; [`UniverseBuilder::run`] re-raises it).
//!
//! Observability: every rank carries a [`MetricsRegistry`] (always on;
//! counters are cheap) and an optional virtual-time [`Tracer`]
//! (zero-cost-when-disabled). Phase attribution is RAII-scoped through
//! [`Comm::phase`] — see [`PhaseGuard`].

use crate::alloc::{self, AllocRecord, AllocTotals, RankAllocCounters};
use crate::error::OversetError;
use crate::flight::{FlightRecorder, StepRecord, DEFAULT_STEP_CAPACITY};
use crate::machine::{MachineModel, WorkClass};
use crate::metrics::{names, MetricsRegistry};
use crate::sched;
use crate::stats::{Phase, RankStats, NUM_PHASES};
use crate::trace::{ArgVal, TraceConfig, TraceEvent, Tracer};
use crate::transport::{self, FabricInner, ProcLink, ProcRound, TransportConfig};
use crate::wire::{intern, wire_type_hash, Wire, WireError, WireReader};
use std::any::Any;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a message's value travels: in-process messages hand the boxed value
/// across directly; messages that crossed a process boundary arrive as wire
/// bytes plus the sender's type hash, decoded lazily at the receive site
/// (where `T` is known).
enum Payload {
    Local(Box<dyn Any + Send>),
    Remote { type_hash: u64, encoded: Vec<u8> },
}

struct Envelope {
    src: usize,
    tag: u64,
    /// Virtual time at which the message is fully available at the receiver.
    arrival: f64,
    /// Logical payload size, carried so the receiver's trace span can report
    /// the same `bytes` the sender charged.
    bytes: usize,
    payload: Payload,
}

/// Marker published in place of a gathered vector when ranks contributed
/// mixed types to one collective round.
struct CollPoison;

/// Deadlock watchdog period: set `OVERSET_COMM_WATCHDOG=<seconds>` to make
/// every blocking wait (point-to-point recv, collective rendezvous, idle
/// M:N workers) report to stderr when it has been stuck longer than the
/// period. Diagnostic only — the wait then resumes; virtual time is
/// unaffected. A value that does not parse as a positive number of seconds
/// disables the watchdog with a one-time stderr warning (it used to be
/// silently ignored, which hid typos exactly when a hang investigation
/// needed the watchdog most).
fn watchdog_period() -> Option<std::time::Duration> {
    static PERIOD: std::sync::OnceLock<Option<std::time::Duration>> = std::sync::OnceLock::new();
    *PERIOD.get_or_init(|| {
        let raw = std::env::var("OVERSET_COMM_WATCHDOG").ok()?;
        match raw.parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => {
                Some(std::time::Duration::from_secs_f64(secs))
            }
            _ => {
                eprintln!(
                    "[overset-comm watchdog] ignoring OVERSET_COMM_WATCHDOG={raw:?}: \
                     expected a positive number of seconds; watchdog disabled"
                );
                None
            }
        }
    })
}

/// One rank's incoming message queue. `waiting` is true while the owner is
/// parked on the queue; it is only read and written under the mutex, so a
/// deliverer always knows whether a wake is needed and wakes can never be
/// lost.
struct MailboxInner {
    queue: VecDeque<Envelope>,
    waiting: bool,
}

struct Mailbox {
    m: Mutex<MailboxInner>,
    cv: Condvar,
}

/// What the first failing rank recorded before the universe was aborted.
struct FailureInfo {
    rank: usize,
    phase: &'static str,
    message: String,
}

/// State shared by every rank of a universe: mailboxes, the collective
/// rendezvous, the failure latch, per-rank completion flags, and (in M:N
/// mode) the scheduler's wakeup fabric.
struct Shared {
    size: usize,
    mailboxes: Vec<Mailbox>,
    coll: Collective,
    /// Raised (with release ordering) after `failure` is recorded; every
    /// blocking wait re-checks it after each park.
    aborted: AtomicBool,
    failure: Mutex<Option<FailureInfo>>,
    /// Set when a rank's body returns normally, so a peer still waiting on
    /// it gets [`OversetError::Disconnected`] instead of hanging.
    finished: Vec<AtomicBool>,
    /// Present in M:N mode only.
    mn: Option<Arc<sched::MnShared>>,
    /// Present in multi-process child mode only: the link to the parent
    /// router, shared with the socket-reader thread.
    proc: Option<Arc<ProcLink>>,
}

impl Shared {
    fn new(size: usize, mn: Option<Arc<sched::MnShared>>, proc: Option<Arc<ProcLink>>) -> Shared {
        Shared {
            size,
            mailboxes: (0..size)
                .map(|_| Mailbox {
                    m: Mutex::new(MailboxInner { queue: VecDeque::new(), waiting: false }),
                    cv: Condvar::new(),
                })
                .collect(),
            coll: Collective::new(size),
            aborted: AtomicBool::new(false),
            failure: Mutex::new(None),
            finished: (0..size).map(|_| AtomicBool::new(false)).collect(),
            mn,
            proc,
        }
    }

    /// Record a rank-body panic and unblock every peer. First failure wins:
    /// later failures (typically peers panicking on `AbortedByPeer` inside
    /// `recv`/`allgather` wrappers) are dropped, since the wake-all has
    /// already run. In child mode the failure is echoed to the parent
    /// router so the other rank groups shut down too.
    fn rank_failed(&self, rank: usize, phase: &'static str, message: String) {
        self.rank_failed_with(rank, phase, message, true);
    }

    /// A failure learned *from* the parent router (a peer group's panic, or
    /// the router disappearing): latch and unblock without echoing an Abort
    /// frame back.
    fn rank_failed_remote(&self, rank: usize, phase: &'static str, message: String) {
        self.rank_failed_with(rank, phase, message, false);
    }

    fn rank_failed_with(&self, rank: usize, phase: &'static str, message: String, echo: bool) {
        {
            let mut slot = self.failure.lock().expect("failure mutex poisoned");
            if slot.is_some() {
                return;
            }
            *slot = Some(FailureInfo { rank, phase, message: message.clone() });
        }
        if echo {
            if let Some(link) = &self.proc {
                link.send_abort(rank, phase, &message);
            }
        }
        self.aborted.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            let mut inner = mb.m.lock().expect("mailbox poisoned");
            inner.waiting = false;
            mb.cv.notify_all();
        }
        {
            let mut inner = self.coll.m.lock().expect("collective mutex poisoned");
            inner.waiters.clear();
            self.coll.cv.notify_all();
        }
        if let Some(link) = &self.proc {
            // Ranks parked on a process-backed collective round.
            let mut inner = link.coll.lock().expect("proc collective poisoned");
            let waiters = std::mem::take(&mut inner.waiters);
            drop(inner);
            link.collcv.notify_all();
            if let Some(mn) = &self.mn {
                for r in waiters {
                    mn.wake(r);
                }
            }
        }
        if let Some(mn) = &self.mn {
            // Wake every virtual rank; parked ones re-check `aborted`,
            // finished ones are skipped by their worker.
            for r in 0..self.size {
                mn.wake(r);
            }
        }
    }

    /// Rank `rank`'s body returned normally: mark it and wake any peer
    /// currently parked in a receive, so waits on this rank fail fast. In
    /// child mode the completion is announced to the parent router, which
    /// relays it to the other rank groups.
    fn rank_finished(&self, rank: usize) {
        if let Some(link) = &self.proc {
            link.send_finish(rank);
        }
        self.rank_finished_notify(rank);
    }

    /// A remote rank's completion relayed by the parent router.
    fn rank_finished_remote(&self, rank: usize) {
        self.rank_finished_notify(rank);
    }

    fn rank_finished_notify(&self, rank: usize) {
        self.finished[rank].store(true, Ordering::Release);
        for (r, mb) in self.mailboxes.iter().enumerate() {
            if r == rank {
                continue;
            }
            let mut inner = mb.m.lock().expect("mailbox poisoned");
            if inner.waiting {
                inner.waiting = false;
                mb.cv.notify_all();
                if let Some(mn) = &self.mn {
                    mn.wake(r);
                }
            }
        }
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<&'static str>() {
        Ok(s) => (*s).to_string(),
        Err(p) => match p.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Child-mode socket reader: drains frames from the parent router into the
/// local mailboxes, collective rounds and failure machinery. Runs on a
/// detached thread — it blocks in `read` between frames, and the child's
/// deliberate `exit(0)` after its rank group completes tears it down.
fn child_router(shared: &Shared, sock: &UnixStream) {
    let link = shared.proc.as_ref().expect("child router without a proc link");
    loop {
        let frame = match transport::read_frame(sock) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => {
                // The parent died (or closed our socket) mid-run: without
                // the router no cross-group traffic can complete, so abort
                // the local ranks instead of hanging them.
                link.parent_gone.store(true, Ordering::SeqCst);
                if !shared.aborted.load(Ordering::Acquire) {
                    shared.rank_failed_remote(
                        link.lo,
                        "other",
                        "parent router process disconnected".to_string(),
                    );
                }
                return;
            }
        };
        match frame {
            transport::Frame::Data { dst, src, tag, arrival, bytes, type_hash, payload } => {
                if dst >= shared.size {
                    continue;
                }
                let env = Envelope {
                    src,
                    tag,
                    arrival,
                    bytes,
                    payload: Payload::Remote { type_hash, encoded: payload },
                };
                let mb = &shared.mailboxes[dst];
                let mut inner = mb.m.lock().expect("mailbox poisoned");
                inner.queue.push_back(env);
                if inner.waiting {
                    inner.waiting = false;
                    mb.cv.notify_all();
                    if let Some(mn) = &shared.mn {
                        mn.wake(dst);
                    }
                }
            }
            transport::Frame::CollResult { round, round_clock, poison, blobs } => {
                let mut inner = link.coll.lock().expect("proc collective poisoned");
                inner.rounds.insert(
                    round,
                    ProcRound {
                        round_clock,
                        poison,
                        blobs: Arc::new(blobs),
                        readers_left: link.hi - link.lo,
                    },
                );
                let waiters = std::mem::take(&mut inner.waiters);
                drop(inner);
                link.collcv.notify_all();
                if let Some(mn) = &shared.mn {
                    for r in waiters {
                        mn.wake(r);
                    }
                }
            }
            transport::Frame::Finish { rank } if rank < shared.size => {
                shared.rank_finished_remote(rank);
            }
            transport::Frame::Abort { rank, phase, message } => {
                shared.rank_failed_remote(rank, intern(&phase), message);
            }
            // Hello/Coll/Done/Bye only ever travel child -> parent.
            _ => {}
        }
    }
}

struct CollInner {
    generation: u64,
    arrived: usize,
    max_clock: f64,
    slots: Vec<Option<Box<dyn Any + Send>>>,
    published: Option<Arc<dyn Any + Send + Sync>>,
    published_clock: f64,
    readers_left: usize,
    /// M:N mode: virtual ranks parked in a collective wait, to be woken
    /// when the round publishes or advances. Duplicates are harmless
    /// (parked ranks re-check their predicate on every resume).
    waiters: Vec<usize>,
}

struct Collective {
    m: Mutex<CollInner>,
    cv: Condvar,
}

impl Collective {
    fn new(n: usize) -> Self {
        Collective {
            m: Mutex::new(CollInner {
                generation: 0,
                arrived: 0,
                max_clock: f64::NEG_INFINITY,
                slots: (0..n).map(|_| None).collect(),
                published: None,
                published_clock: 0.0,
                readers_left: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }
}

/// Per-rank communicator handle. Created by [`Universe`]; owns the rank's
/// virtual clock, statistics, metrics registry, optional tracer, and its
/// view of the shared mailbox/collective state.
pub struct Comm {
    rank: usize,
    size: usize,
    machine: Arc<MachineModel>,
    clock: f64,
    working_set_bytes: f64,
    shared: Arc<Shared>,
    pending: Vec<Envelope>,
    coll_gen: u64,
    stats: RankStats,
    metrics: MetricsRegistry,
    flight: FlightRecorder,
    tracer: Option<Tracer>,
    phase: Phase,
    phase_start: f64,
    /// Host wall-clock seconds spent per phase on this rank — the *real*
    /// cost of the run, as opposed to the deterministic virtual clock. Only
    /// ever reported in advisory channels; nothing bit-compared reads it.
    host_time: [f64; NUM_PHASES],
    /// Host instant of the last phase switch.
    phase_host_start: Instant,
    /// Per-rank allocation counters; the thread-local allocator context
    /// points at this block while the rank body runs (see [`crate::alloc`]).
    alloc_counters: Arc<RankAllocCounters>,
    /// Set by the innermost [`PhaseGuard`] unwound through during a panic,
    /// so the failure report names the phase the rank was actually in.
    panicked_phase: Option<&'static str>,
}

/// RAII phase scope: created by [`Comm::phase`]; while alive, virtual time
/// and flops accrue to its phase; dropping it restores the previous phase
/// (flushing elapsed time) and, when tracing, emits a `phase` span covering
/// the scope. Derefs to [`Comm`], so communication happens *through* the
/// guard — phase attribution cannot be left dangling.
pub struct PhaseGuard<'a> {
    comm: &'a mut Comm,
    prev: Phase,
    start: f64,
}

impl Deref for PhaseGuard<'_> {
    type Target = Comm;
    fn deref(&self) -> &Comm {
        self.comm
    }
}

impl DerefMut for PhaseGuard<'_> {
    fn deref_mut(&mut self) -> &mut Comm {
        self.comm
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let ended = self.comm.phase;
        if std::thread::panicking() && self.comm.panicked_phase.is_none() {
            // Innermost guard drops first during unwinding — `ended` is the
            // phase the panic actually happened in.
            self.comm.panicked_phase = Some(ended.name());
        }
        let start = self.start;
        let dur = self.comm.clock - start;
        self.comm.switch_phase(self.prev);
        if let Some(t) = &mut self.comm.tracer {
            t.complete("phase", ended.name(), start, dur, Vec::new());
        }
    }
}

impl Comm {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    #[inline]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Current virtual time, seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The rank's metrics registry (read side).
    #[inline]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The rank's metrics registry (record side).
    #[inline]
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Is event tracing active on this rank?
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Record a completed span from virtual time `start` to now. No-op
    /// (one branch) when tracing is disabled.
    #[inline]
    pub fn trace_complete(
        &mut self,
        cat: &'static str,
        name: &'static str,
        start: f64,
        args: &[(&'static str, ArgVal)],
    ) {
        if let Some(t) = &mut self.tracer {
            let _quiet = alloc::suspend();
            let dur = self.clock - start;
            t.complete(cat, name, start, dur, args.to_vec());
        }
    }

    /// Set the per-rank working set used by the cache model (bytes).
    pub fn set_working_set(&mut self, bytes: f64) {
        self.working_set_bytes = bytes;
    }

    /// Close the current timestep for the flight recorder: flushes the open
    /// phase's elapsed time and appends one [`StepRecord`] of per-step
    /// deltas (phase times, service/orphan/cache counters, traffic,
    /// repartitions). Reads only existing state — never advances the
    /// virtual clock, so recording is physics- and timing-neutral.
    ///
    /// In M:N mode a step boundary is also a fairness point: the rank
    /// requeues itself and yields so sibling ranks on the same worker make
    /// progress. This affects wall-clock interleaving only, never virtual
    /// time.
    pub fn end_step(&mut self) {
        // Recorder/sink bookkeeping is runtime overhead, not rank work.
        let _quiet = alloc::suspend();
        let phase = self.phase;
        self.switch_phase(phase); // flush elapsed time, keep the phase
        let (rec, arec) = self.flight.end_step(
            &self.stats,
            &self.metrics,
            self.clock,
            self.alloc_counters.snapshot(),
        );
        if let Some(t) = &mut self.tracer {
            t.record_step(&rec);
            t.record_alloc_step(&arec);
        }
        if let Some(mn) = &self.shared.mn {
            mn.wake(self.rank);
            sched::mn_yield();
        }
    }

    /// Per-step records collected so far (oldest retained first).
    pub fn step_records(&self) -> impl Iterator<Item = &StepRecord> + '_ {
        self.flight.records()
    }

    /// Enter `phase` for the lifetime of the returned guard. Statistics
    /// time accrues to the phase that was active up to this call; the
    /// guard's drop restores it.
    pub fn phase(&mut self, phase: Phase) -> PhaseGuard<'_> {
        let prev = self.switch_phase(phase);
        let start = self.clock;
        PhaseGuard { comm: self, prev, start }
    }

    /// The phase statistics currently accrue to.
    #[inline]
    pub fn current_phase(&self) -> Phase {
        self.phase
    }

    /// Switch the statistics phase, flushing elapsed time into the bucket
    /// of the phase that was active. Internal: external callers scope
    /// phases with [`Comm::phase`].
    fn switch_phase(&mut self, phase: Phase) -> Phase {
        let elapsed = self.clock - self.phase_start;
        self.stats.time[self.phase as usize] += elapsed;
        let host_now = Instant::now();
        self.host_time[self.phase as usize] +=
            host_now.duration_since(self.phase_host_start).as_secs_f64();
        let prev = self.phase;
        self.phase = phase;
        alloc::set_phase(phase);
        self.phase_start = self.clock;
        self.phase_host_start = host_now;
        prev
    }

    /// Account `flops` of `class` compute work: advances the virtual clock
    /// and the flop counters.
    pub fn compute(&mut self, flops: f64, class: WorkClass) {
        debug_assert!(flops >= 0.0);
        let t0 = self.clock;
        let dt = self.machine.compute_time(flops, class, self.working_set_bytes);
        self.clock += dt;
        self.stats.flops[self.phase as usize] += flops;
        if let Some(t) = &mut self.tracer {
            let _quiet = alloc::suspend();
            let name = match class {
                WorkClass::Flow => "flow",
                WorkClass::Search => "search",
                WorkClass::Other => "other",
            };
            t.complete("compute", name, t0, dt, vec![("flops", ArgVal::F64(flops))]);
        }
    }

    /// Advance the clock without doing flops (e.g. fixed overheads).
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
    }

    /// The error a blocked rank reports when it was woken because a peer
    /// panicked.
    fn abort_error(&self) -> OversetError {
        let failed_rank = self
            .shared
            .failure
            .lock()
            .expect("failure mutex poisoned")
            .as_ref()
            .map_or(self.rank, |f| f.rank);
        OversetError::AbortedByPeer { rank: self.rank, failed_rank }
    }

    /// Send `payload` (logical size `bytes`) to `dst` with a message `tag`.
    /// Non-blocking (asynchronous send, as DCF3D's search requests are).
    ///
    /// The payload must be a [`Wire`] type: the in-process backend still
    /// hands the value across directly, but the bound guarantees every
    /// protocol message has a byte representation, so the same program runs
    /// unchanged on the multi-process backend.
    pub fn send<T: Wire + Send + 'static>(
        &mut self,
        dst: usize,
        tag: u64,
        payload: T,
        bytes: usize,
    ) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        // Delivery machinery (envelope boxing, mailbox growth, socket
        // buffers) allocates in host-timing-dependent patterns — exclude it
        // from attribution so per-phase alloc counts stay deterministic.
        let _quiet = alloc::suspend();
        let t0 = self.clock;
        self.clock += self.machine.send_overhead;
        let arrival = self.clock + self.machine.transit_time(bytes);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.metrics.inc(names::msgs_in(self.phase));
        self.metrics.add(names::bytes_in(self.phase), bytes as u64);
        if let Some(t) = &mut self.tracer {
            let _quiet = alloc::suspend();
            t.complete(
                "comm",
                "send",
                t0,
                self.machine.send_overhead,
                vec![
                    ("dst", ArgVal::U64(dst as u64)),
                    ("tag", ArgVal::U64(tag)),
                    ("bytes", ArgVal::U64(bytes as u64)),
                ],
            );
        }
        if let Some(link) = &self.shared.proc {
            if dst < link.lo || dst >= link.hi {
                // Cross-process: encode and hand to the parent router. The
                // arrival stamp was computed above from local virtual state,
                // so timing is identical to the in-process delivery path.
                link.send_data(
                    dst,
                    self.rank,
                    tag,
                    arrival,
                    bytes,
                    wire_type_hash::<T>(),
                    payload.to_wire_bytes(),
                );
                return;
            }
        }
        let env = Envelope {
            src: self.rank,
            tag,
            arrival,
            bytes,
            payload: Payload::Local(Box::new(payload)),
        };
        let mb = &self.shared.mailboxes[dst];
        let mut inner = mb.m.lock().expect("mailbox poisoned");
        inner.queue.push_back(env);
        if inner.waiting {
            inner.waiting = false;
            mb.cv.notify_all();
            if let Some(mn) = &self.shared.mn {
                mn.wake(dst);
            }
        }
    }

    /// Blocking receive of a message of type `T` from `src` with `tag`.
    /// Advances the clock to at least the message arrival time.
    ///
    /// Convenience wrapper over [`Comm::try_recv`] that treats failure as
    /// an internal protocol invariant violation (panics). Fallible callers
    /// use `try_recv`.
    pub fn recv<T: Wire + Send + 'static>(&mut self, src: usize, tag: u64) -> T {
        self.try_recv(src, tag).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Blocking receive of a message of type `T` from `src` with `tag`,
    /// surfacing type mismatches, wire-decode failures, finished senders
    /// and peer failures as [`OversetError`].
    pub fn try_recv<T: Wire + Send + 'static>(
        &mut self,
        src: usize,
        tag: u64,
    ) -> Result<T, OversetError> {
        // Out-of-order buffering in `take_matching` (and payload decode on
        // the process transport) allocates depending on arrival interleaving
        // — runtime machinery, excluded from attribution.
        let _quiet = alloc::suspend();
        let t0 = self.clock;
        let env = self.take_matching(src, tag)?;
        let stall = (env.arrival - self.clock).max(0.0);
        // Time the fully-arrived message sat buffered before this receive —
        // the Scalasca-style "late receiver" complement of `stall`.
        let idle = (self.clock - env.arrival).max(0.0);
        self.clock = self.clock.max(env.arrival);
        self.metrics.observe(names::COMM_RECV_STALL, stall);
        if let Some(t) = &mut self.tracer {
            let _quiet = alloc::suspend();
            t.complete(
                "comm",
                "recv",
                t0,
                self.clock - t0,
                vec![
                    ("src", ArgVal::U64(src as u64)),
                    ("tag", ArgVal::U64(tag)),
                    ("bytes", ArgVal::U64(env.bytes as u64)),
                    ("stall", ArgVal::F64(stall)),
                    ("idle", ArgVal::F64(idle)),
                ],
            );
        }
        match env.payload {
            Payload::Local(b) => match b.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(_) => Err(OversetError::TypeMismatch {
                    rank: self.rank,
                    src,
                    tag,
                    expected: std::any::type_name::<T>(),
                }),
            },
            Payload::Remote { type_hash, encoded } => {
                if type_hash != wire_type_hash::<T>() {
                    return Err(OversetError::TypeMismatch {
                        rank: self.rank,
                        src,
                        tag,
                        expected: std::any::type_name::<T>(),
                    });
                }
                T::from_wire_bytes(&encoded).map_err(|e| OversetError::WireDecode {
                    rank: self.rank,
                    src,
                    tag,
                    detail: e.to_string(),
                })
            }
        }
    }

    fn take_matching(&mut self, src: usize, tag: u64) -> Result<Envelope, OversetError> {
        if let Some(pos) = self.pending.iter().position(|e| e.src == src && e.tag == tag) {
            // Order-preserving removal: multiple buffered messages with the
            // same (src, tag) must be consumed FIFO (e.g. pipelined line
            // chunks).
            return Ok(self.pending.remove(pos));
        }
        let shared = Arc::clone(&self.shared);
        let mb = &shared.mailboxes[self.rank];
        let mut inner = mb.m.lock().expect("mailbox poisoned");
        loop {
            inner.waiting = false;
            // Drain everything delivered so far; non-matching messages go to
            // the pending buffer in delivery order.
            let mut found = None;
            while let Some(env) = inner.queue.pop_front() {
                if env.src == src && env.tag == tag {
                    found = Some(env);
                    break;
                }
                self.pending.push(env);
            }
            if let Some(env) = found {
                return Ok(env);
            }
            if shared.aborted.load(Ordering::Acquire) {
                return Err(self.abort_error());
            }
            if shared.finished[src].load(Ordering::Acquire) {
                return Err(OversetError::Disconnected { rank: self.rank, src, tag });
            }
            inner.waiting = true;
            if shared.mn.is_some() {
                // M:N: give the OS thread back to the worker; a deliverer
                // (or abort/finish) wakes this rank through the scheduler.
                drop(inner);
                sched::mn_yield();
                inner = mb.m.lock().expect("mailbox poisoned");
            } else {
                inner = match watchdog_period() {
                    None => mb.cv.wait(inner).expect("mailbox poisoned"),
                    Some(period) => {
                        let (g, to) = mb.cv.wait_timeout(inner, period).expect("mailbox poisoned");
                        if to.timed_out() {
                            let buffered: Vec<(usize, u64)> =
                                self.pending.iter().map(|e| (e.src, e.tag)).collect();
                            eprintln!(
                                "[overset-comm watchdog] rank {} stuck in recv(src={src}, tag={tag}); \
                                 buffered={buffered:?}",
                                self.rank
                            );
                        }
                        g
                    }
                };
            }
        }
    }

    /// Synchronize all ranks: everyone leaves with the same clock (round max
    /// plus the collective cost).
    pub fn barrier(&mut self) {
        let _: Vec<u8> = self.allgather_inner("barrier", 0u8, 8).unwrap_or_else(|e| panic!("{e}"));
    }

    /// All-gather: every rank contributes `value` (logical size `bytes`) and
    /// receives the vector of all contributions indexed by rank.
    ///
    /// Convenience wrapper over [`Comm::try_allgather`] that treats failure
    /// as an internal protocol invariant violation (panics).
    pub fn allgather<T: Wire + Clone + Send + Sync + 'static>(
        &mut self,
        value: T,
        bytes: usize,
    ) -> Vec<T> {
        self.try_allgather(value, bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// All-gather surfacing mixed-type collectives and peer failures as
    /// [`OversetError`].
    pub fn try_allgather<T: Wire + Clone + Send + Sync + 'static>(
        &mut self,
        value: T,
        bytes: usize,
    ) -> Result<Vec<T>, OversetError> {
        self.allgather_inner("allgather", value, bytes)
    }

    fn allgather_inner<T: Wire + Clone + Send + Sync + 'static>(
        &mut self,
        span_name: &'static str,
        value: T,
        bytes: usize,
    ) -> Result<Vec<T>, OversetError> {
        // Rendezvous buffers (which rank gathers, how many wait-loop
        // iterations run) depend on host timing — excluded from attribution.
        let _quiet = alloc::suspend();
        let t0 = self.clock;
        // Rendezvous through whichever fabric carries collectives, then
        // apply the backend-independent virtual-time tail. The round clock
        // is the max over contributing clocks — an order-independent fold,
        // so it is bit-identical across backends.
        let (result, round_clock) = if self.shared.proc.is_some() {
            self.proc_allgather(value)?
        } else {
            self.local_allgather(value)?
        };
        self.clock = round_clock + self.machine.collective_time(self.size, bytes * self.size);
        self.stats.collectives += 1;
        self.metrics.inc(names::COMM_COLLECTIVES);
        if let Some(t) = &mut self.tracer {
            let _quiet = alloc::suspend();
            t.complete(
                "comm",
                span_name,
                t0,
                self.clock - t0,
                vec![("bytes", ArgVal::U64(bytes as u64))],
            );
        }
        Ok(result)
    }

    /// In-process collective: rendezvous through the shared [`Collective`];
    /// the last arriver gathers and publishes. Returns the contributions in
    /// rank order plus the round clock.
    fn local_allgather<T: Clone + Send + Sync + 'static>(
        &mut self,
        value: T,
    ) -> Result<(Vec<T>, f64), OversetError> {
        let gen = self.coll_gen;
        self.coll_gen += 1;
        let shared = Arc::clone(&self.shared);
        let coll = &shared.coll;
        let mut inner = coll.m.lock().expect("collective mutex poisoned");
        // Wait for our round to open (previous round fully consumed).
        while inner.generation != gen {
            if shared.aborted.load(Ordering::Acquire) {
                return Err(self.abort_error());
            }
            if shared.mn.is_some() {
                inner.waiters.push(self.rank);
                drop(inner);
                sched::mn_yield();
                inner = coll.m.lock().expect("collective mutex poisoned");
            } else {
                inner = match watchdog_period() {
                    None => coll.cv.wait(inner).expect("collective mutex poisoned"),
                    Some(period) => {
                        let (g, to) =
                            coll.cv.wait_timeout(inner, period).expect("collective mutex poisoned");
                        if to.timed_out() {
                            eprintln!(
                                "[overset-comm watchdog] rank {} stuck opening collective round \
                                 gen={gen} (current generation={}, arrived={}/{}, readers_left={})",
                                self.rank, g.generation, g.arrived, self.size, g.readers_left
                            );
                        }
                        g
                    }
                };
            }
        }
        inner.slots[self.rank] = Some(Box::new(value));
        inner.arrived += 1;
        inner.max_clock = inner.max_clock.max(self.clock);
        if inner.arrived == self.size {
            // Last arriver gathers and publishes. If any rank contributed a
            // different type, publish a poison marker so every rank reports
            // the mismatch instead of deadlocking.
            let mut gathered: Vec<T> = Vec::with_capacity(self.size);
            let mut poisoned = false;
            for s in inner.slots.iter_mut() {
                let b = s.take().expect("missing collective slot");
                match b.downcast::<T>() {
                    Ok(v) => gathered.push(*v),
                    Err(_) => poisoned = true,
                }
            }
            inner.published =
                Some(if poisoned { Arc::new(CollPoison) } else { Arc::new(gathered) });
            inner.published_clock = inner.max_clock;
            inner.readers_left = self.size;
            inner.arrived = 0;
            inner.max_clock = f64::NEG_INFINITY;
            let waiters = std::mem::take(&mut inner.waiters);
            coll.cv.notify_all();
            if let Some(mn) = &shared.mn {
                for r in waiters {
                    mn.wake(r);
                }
            }
        } else {
            while inner.published.is_none() || inner.generation != gen {
                if shared.aborted.load(Ordering::Acquire) {
                    return Err(self.abort_error());
                }
                if shared.mn.is_some() {
                    inner.waiters.push(self.rank);
                    drop(inner);
                    sched::mn_yield();
                    inner = coll.m.lock().expect("collective mutex poisoned");
                } else {
                    inner = match watchdog_period() {
                        None => coll.cv.wait(inner).expect("collective mutex poisoned"),
                        Some(period) => {
                            let (g, to) = coll
                                .cv
                                .wait_timeout(inner, period)
                                .expect("collective mutex poisoned");
                            if to.timed_out() {
                                eprintln!(
                                    "[overset-comm watchdog] rank {} stuck in collective round \
                                     gen={gen} (arrived={}/{}, published={})",
                                    self.rank,
                                    g.arrived,
                                    self.size,
                                    g.published.is_some()
                                );
                            }
                            g
                        }
                    };
                }
            }
        }
        let arc = inner.published.clone().expect("published result");
        let round_clock = inner.published_clock;
        inner.readers_left -= 1;
        if inner.readers_left == 0 {
            inner.published = None;
            inner.generation = gen + 1;
            let waiters = std::mem::take(&mut inner.waiters);
            coll.cv.notify_all();
            if let Some(mn) = &shared.mn {
                for r in waiters {
                    mn.wake(r);
                }
            }
        }
        drop(inner);
        let result = match arc.downcast::<Vec<T>>() {
            Ok(v) => v.as_ref().clone(),
            Err(_) => {
                return Err(OversetError::CollectiveMismatch {
                    rank: self.rank,
                    expected: std::any::type_name::<T>(),
                })
            }
        };
        Ok((result, round_clock))
    }

    /// Process-backed collective: ship this rank's contribution to the
    /// parent router, wait for the aggregated round, decode every rank's
    /// blob. Round numbers are each rank's private collective counter —
    /// every rank executes the same collective sequence, so counter values
    /// agree globally without coordination.
    fn proc_allgather<T: Wire + 'static>(
        &mut self,
        value: T,
    ) -> Result<(Vec<T>, f64), OversetError> {
        let round = self.coll_gen;
        self.coll_gen += 1;
        let shared = Arc::clone(&self.shared);
        let link = shared.proc.as_ref().expect("proc_allgather without a proc link");
        link.send_coll(round, self.rank, self.clock, wire_type_hash::<T>(), value.to_wire_bytes());
        let mut inner = link.coll.lock().expect("proc collective poisoned");
        loop {
            if shared.aborted.load(Ordering::Acquire) {
                return Err(self.abort_error());
            }
            if let Some(r) = inner.rounds.get_mut(&round) {
                let round_clock = r.round_clock;
                let poison = r.poison;
                let blobs = Arc::clone(&r.blobs);
                r.readers_left -= 1;
                if r.readers_left == 0 {
                    inner.rounds.remove(&round);
                }
                drop(inner);
                if poison {
                    return Err(OversetError::CollectiveMismatch {
                        rank: self.rank,
                        expected: std::any::type_name::<T>(),
                    });
                }
                let mut out = Vec::with_capacity(blobs.len());
                for (src, blob) in blobs.iter().enumerate() {
                    out.push(T::from_wire_bytes(blob).map_err(|e| OversetError::WireDecode {
                        rank: self.rank,
                        src,
                        tag: round,
                        detail: format!("collective round {round}: {e}"),
                    })?);
                }
                return Ok((out, round_clock));
            }
            if shared.mn.is_some() {
                inner.waiters.push(self.rank);
                drop(inner);
                sched::mn_yield();
                inner = link.coll.lock().expect("proc collective poisoned");
            } else {
                inner = match watchdog_period() {
                    None => link.collcv.wait(inner).expect("proc collective poisoned"),
                    Some(period) => {
                        let (g, to) = link
                            .collcv
                            .wait_timeout(inner, period)
                            .expect("proc collective poisoned");
                        if to.timed_out() {
                            eprintln!(
                                "[overset-comm watchdog] rank {} stuck in process-backed \
                                 collective round {round} (resolved rounds: {:?})",
                                self.rank,
                                g.rounds.keys().collect::<Vec<_>>()
                            );
                        }
                        g
                    }
                };
            }
        }
    }

    /// All-reduce max over f64.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        self.allgather(value, 8).into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// All-reduce sum over f64.
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allgather(value, 8).into_iter().sum()
    }

    /// All-reduce sum over usize.
    pub fn allreduce_sum_usize(&mut self, value: usize) -> usize {
        self.allgather(value, 8).into_iter().sum()
    }

    /// Finalize statistics (closes the open phase) and return them together
    /// with the recorded trace, the metrics registry, the flight recorder's
    /// per-step records, the host wall-clock phase times, and the rank's
    /// allocation telemetry. Closes the streaming sink (flush + footer)
    /// when one is attached.
    fn finish(mut self) -> FinishedRank {
        let phase = self.phase;
        self.switch_phase(phase); // flush elapsed time into the current bucket
        self.stats.final_clock = self.clock;
        let (steps, alloc_steps, dropped) = self.flight.into_records();
        let trace = self.tracer.take().map(|t| t.finish(dropped)).unwrap_or_default();
        FinishedRank {
            stats: self.stats,
            trace,
            metrics: self.metrics,
            steps,
            steps_dropped: dropped,
            host_time: self.host_time,
            alloc_steps,
            alloc: self.alloc_counters.totals(),
        }
    }
}

/// Everything [`Comm::finish`] hands back to `run_ranks` for one rank —
/// [`RankOutput`] minus the rank body's result.
struct FinishedRank {
    stats: RankStats,
    trace: Vec<TraceEvent>,
    metrics: MetricsRegistry,
    steps: Vec<StepRecord>,
    steps_dropped: u64,
    host_time: [f64; NUM_PHASES],
    alloc_steps: Vec<AllocRecord>,
    alloc: AllocTotals,
}

/// Result of one rank's execution under [`Universe`].
#[derive(Clone, Debug)]
pub struct RankOutput<R> {
    pub result: R,
    pub stats: RankStats,
    /// Virtual-time spans recorded on this rank (empty unless the universe
    /// was built with tracing enabled).
    pub trace: Vec<TraceEvent>,
    /// This rank's metrics registry.
    pub metrics: MetricsRegistry,
    /// Per-timestep telemetry recorded by [`Comm::end_step`], oldest
    /// retained record first (the ring may have evicted early steps — see
    /// `steps_dropped`). Empty when the rank body never called `end_step`.
    pub steps: Vec<StepRecord>,
    /// Step records evicted by the flight-recorder ring bound.
    pub steps_dropped: u64,
    /// Host wall-clock seconds per phase on this rank. Nondeterministic:
    /// useful for advisory profiling (`repro compare` host notes, `repro
    /// analyze --host`), never bit-compared.
    pub host_time: [f64; NUM_PHASES],
    /// Per-step allocation deltas, in lockstep with `steps` (same ring, so
    /// `steps_dropped` covers both). Counts/bytes are deterministic for
    /// deterministic rank code — see [`crate::alloc`].
    pub alloc_steps: Vec<AllocRecord>,
    /// End-of-run allocation totals for this rank. All fields deterministic
    /// except `peak_bytes` (allocation-order-dependent, advisory only).
    pub alloc: AllocTotals,
}

// A child process ships each rank's whole output (result, stats, trace,
// metrics, flight telemetry, host timings, allocation telemetry) back to
// the parent as one wire value. Wire schema v2 appended `host_time`; v3
// appended `alloc_steps` + `alloc` — see docs/TRANSPORT.md.
impl<R: Wire> Wire for RankOutput<R> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.result.encode(buf);
        self.stats.encode(buf);
        self.trace.encode(buf);
        self.metrics.encode(buf);
        self.steps.encode(buf);
        self.steps_dropped.encode(buf);
        self.host_time.encode(buf);
        self.alloc_steps.encode(buf);
        self.alloc.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RankOutput {
            result: R::decode(r)?,
            stats: RankStats::decode(r)?,
            trace: Vec::decode(r)?,
            metrics: MetricsRegistry::decode(r)?,
            steps: Vec::decode(r)?,
            steps_dropped: u64::decode(r)?,
            host_time: <[f64; NUM_PHASES]>::decode(r)?,
            alloc_steps: Vec::decode(r)?,
            alloc: AllocTotals::decode(r)?,
        })
    }
}

/// The simulated parallel machine. Configure one with
/// [`Universe::builder`]:
///
/// ```
/// use overset_comm::prelude::*;
///
/// let out = Universe::builder()
///     .ranks(4)
///     .machine(&MachineModel::modern())
///     .trace(TraceConfig::enabled())
///     .run(|c| c.rank() * 2);
/// assert_eq!(out[2].result, 4);
/// ```
pub struct Universe;

/// Builder for a universe run: rank count, machine model, tracing, the
/// flight-recorder ring capacity, the scheduler mode
/// ([`UniverseBuilder::max_threads`]) and the transport backend
/// ([`UniverseBuilder::transport`]).
#[derive(Clone, Debug)]
pub struct UniverseBuilder {
    ranks: usize,
    machine: MachineModel,
    trace: TraceConfig,
    step_capacity: usize,
    max_threads: Option<usize>,
    stack_size: usize,
    transport: TransportConfig,
}

impl Universe {
    pub fn builder() -> UniverseBuilder {
        UniverseBuilder {
            ranks: 1,
            machine: MachineModel::modern(),
            trace: TraceConfig::disabled(),
            step_capacity: DEFAULT_STEP_CAPACITY,
            max_threads: None,
            stack_size: sched::DEFAULT_STACK_SIZE,
            transport: TransportConfig::InProcess,
        }
    }

    /// Shorthand for `Universe::builder().ranks(nranks).machine(machine).run(f)`.
    #[deprecated(
        since = "0.1.0",
        note = "use Universe::builder().ranks(n).machine(m).run(f); the builder also \
                selects the transport backend, scheduler mode and tracing"
    )]
    pub fn run<R, F>(nranks: usize, machine: &MachineModel, f: F) -> Vec<RankOutput<R>>
    where
        R: Wire + Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Universe::builder().ranks(nranks).machine(machine).run(f)
    }
}

impl UniverseBuilder {
    pub fn ranks(mut self, n: usize) -> Self {
        self.ranks = n;
        self
    }

    pub fn machine(mut self, m: &MachineModel) -> Self {
        self.machine = m.clone();
        self
    }

    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = cfg;
        self
    }

    /// Flight-recorder ring capacity: at most this many most-recent
    /// [`StepRecord`]s are retained per rank (default
    /// [`DEFAULT_STEP_CAPACITY`]).
    pub fn step_capacity(mut self, cap: usize) -> Self {
        self.step_capacity = cap;
        self
    }

    /// Bound the number of OS threads used to execute the ranks.
    ///
    /// Default (unset): one OS thread per rank. With `n < ranks`, the
    /// runtime switches to M:N mode — ranks run as cooperative coroutines
    /// multiplexed onto `n` worker threads, yielding at every communication
    /// point — which is how rank counts far beyond the host's core count
    /// stay runnable. Virtual times are **bit-identical** between the two
    /// modes for the same configuration. On targets without the coroutine
    /// context switch (non-x86-64), the builder warns once and falls back
    /// to one thread per rank.
    pub fn max_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "max_threads must be at least 1");
        self.max_threads = Some(n);
        self
    }

    /// Per-virtual-rank coroutine stack size in M:N mode, bytes (default
    /// 2 MiB, minimum 64 KiB). Ignored in 1:1 mode.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Select the transport backend (default
    /// [`TransportConfig::InProcess`]). With a process transport, `run`
    /// forks rank-group processes and this process routes frames between
    /// them; virtual times, statistics and metrics are bit-identical to an
    /// in-process run of the same configuration. See [`crate::transport`].
    pub fn transport(mut self, t: TransportConfig) -> Self {
        self.transport = t;
        self
    }

    /// Run `f` on every rank. Returns per-rank outputs in rank order. A
    /// panic in any rank body is re-raised here with the failing rank,
    /// phase and message (see [`UniverseBuilder::try_run`] to handle it as
    /// an error instead).
    pub fn run<R, F>(self, f: F) -> Vec<RankOutput<R>>
    where
        R: Wire + Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        self.try_run(f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run `f` on every rank, surfacing a rank-body panic as
    /// [`OversetError::RankPanicked`] naming the failing rank and the
    /// statistics phase it was in. Peers blocked in communication are
    /// unblocked (their calls return [`OversetError::AbortedByPeer`], which
    /// the panicking wrappers re-raise) so the universe shuts down instead
    /// of hanging. On a process transport, a rank-group process that dies
    /// without a clean goodbye (killed, `exit` mid-run) surfaces as
    /// `RankPanicked` too, with its surviving peer groups aborted.
    ///
    /// With a process transport this call is also where the current process
    /// may discover it *is* one of the rank-group children: it then runs
    /// only its rank subrange, ships the outputs back over its socket and
    /// exits — code after this call never runs in a child.
    pub fn try_run<R, F>(self, f: F) -> Result<Vec<RankOutput<R>>, OversetError>
    where
        R: Wire + Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        let nranks = self.ranks;
        assert!(nranks >= 1);
        let fabric = self.transport.instantiate().establish(nranks)?;
        match fabric.0 {
            FabricInner::Local => self.run_ranks(&f, 0, nranks, None),
            FabricInner::Child(cf) => {
                if cf.nranks != nranks {
                    return Err(OversetError::Setup(format!(
                        "process transport: parent established {} ranks but this child's \
                         universe asks for {nranks}",
                        cf.nranks
                    )));
                }
                let (link, reader) = cf.split()?;
                let lo = link.lo;
                let result =
                    self.run_ranks(&f, link.lo, link.hi, Some((Arc::clone(&link), reader)));
                if let Ok(outputs) = &result {
                    for (i, out) in outputs.iter().enumerate() {
                        link.send_done(lo + i, out.to_wire_bytes());
                    }
                }
                // A failure was already echoed to the parent as an Abort
                // frame by the failing rank, so the Err branch has nothing
                // left to report.
                link.send_bye();
                // This process replayed the program only to execute this
                // rank group; nothing after the universe may run twice.
                std::process::exit(0);
            }
            FabricInner::Parent(pf) => pf.run::<R>(),
        }
    }

    /// Execute ranks `lo..hi` of a `self.ranks`-rank universe in this
    /// process; `proc` carries the parent link and the socket to drain in
    /// child mode. The in-process backend is the `(0, nranks, None)` case.
    fn run_ranks<R, F>(
        self,
        f: &F,
        lo: usize,
        hi: usize,
        proc: Option<(Arc<ProcLink>, UnixStream)>,
    ) -> Result<Vec<RankOutput<R>>, OversetError>
    where
        R: Wire + Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        let nranks = self.ranks;
        let nlocal = hi - lo;
        let use_mn = match self.max_threads {
            Some(n) if n < nlocal => {
                if sched::MN_AVAILABLE {
                    true
                } else {
                    eprintln!(
                        "[overset-comm] max_threads({n}) requested but the M:N scheduler is \
                         not available on this target; running one thread per rank"
                    );
                    false
                }
            }
            _ => false,
        };
        let mn = use_mn.then(|| Arc::new(sched::MnShared::new(self.max_threads.unwrap())));
        let machine = Arc::new(self.machine.clone());
        let (link, reader) = match proc {
            Some((link, reader)) => (Some(link), Some(reader)),
            None => (None, None),
        };
        let shared = Arc::new(Shared::new(nranks, mn, link));
        if let Some(reader) = reader {
            // Detached on purpose: it blocks in `read` between frames and
            // is torn down by the child's deliberate exit.
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || child_router(&shared, &reader));
        }
        let trace = self.trace;
        let step_capacity = self.step_capacity;
        let stack_size = self.stack_size;
        let outputs: Mutex<Vec<Option<RankOutput<R>>>> =
            Mutex::new((0..nlocal).map(|_| None).collect());
        {
            let outputs = &outputs;
            let shared_ref = &shared;
            let machine_ref = &machine;
            // One rank's whole life: build its Comm, run the body under
            // catch_unwind, then either publish the output or record the
            // failure and abort the universe. Runs on an OS thread (1:1) or
            // a coroutine (M:N). `rank` is always the global rank id.
            let rank_main = move |rank: usize| {
                let alloc_counters = Arc::new(RankAllocCounters::new());
                let mut comm = Comm {
                    rank,
                    size: nranks,
                    machine: Arc::clone(machine_ref),
                    clock: 0.0,
                    working_set_bytes: 0.0,
                    shared: Arc::clone(shared_ref),
                    pending: Vec::new(),
                    coll_gen: 0,
                    stats: RankStats::new(rank),
                    metrics: MetricsRegistry::new(),
                    flight: FlightRecorder::new(step_capacity),
                    tracer: trace.enabled.then(|| Tracer::for_rank(&trace, rank)),
                    phase: Phase::Other,
                    phase_start: 0.0,
                    host_time: [0.0; NUM_PHASES],
                    phase_host_start: Instant::now(),
                    alloc_counters: Arc::clone(&alloc_counters),
                    panicked_phase: None,
                };
                // Attribute this rank's allocations from here until the body
                // returns (or unwinds). `comm` holds a clone of the counters,
                // so the raw pointer in the thread-local context stays valid
                // until the explicit clear below.
                alloc::install(&alloc_counters, Phase::Other);
                let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm)));
                alloc::clear();
                match body {
                    Ok(result) => {
                        comm.shared.rank_finished(rank);
                        let fin = comm.finish();
                        outputs.lock().expect("outputs poisoned")[rank - lo] = Some(RankOutput {
                            result,
                            stats: fin.stats,
                            trace: fin.trace,
                            metrics: fin.metrics,
                            steps: fin.steps,
                            steps_dropped: fin.steps_dropped,
                            host_time: fin.host_time,
                            alloc_steps: fin.alloc_steps,
                            alloc: fin.alloc,
                        });
                    }
                    Err(payload) => {
                        let phase = comm.panicked_phase.take().unwrap_or_else(|| comm.phase.name());
                        shared_ref.rank_failed(rank, phase, panic_message(payload));
                    }
                }
            };
            let rank_main = &rank_main;
            if let Some(mn) = shared.mn.as_ref() {
                let nworkers = mn.nworkers();
                std::thread::scope(|s| {
                    let mut per_worker: Vec<Vec<sched::Coro>> =
                        (0..nworkers).map(|_| Vec::new()).collect();
                    for rank in lo..hi {
                        // The task borrows `rank_main`'s captures, which all
                        // outlive this scope; the workers (and with them
                        // every coroutine) join before the scope exits, so
                        // promoting the closure to 'static cannot dangle.
                        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || rank_main(rank));
                        let task: Box<dyn FnOnce() + Send + 'static> =
                            unsafe { std::mem::transmute(task) };
                        per_worker[rank % nworkers].push(sched::Coro::new(rank, stack_size, task));
                    }
                    for (widx, coros) in per_worker.into_iter().enumerate() {
                        let mn = Arc::clone(mn);
                        s.spawn(move || sched::worker_loop(widx, &mn, coros, watchdog_period()));
                    }
                });
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> =
                        (lo..hi).map(|rank| s.spawn(move || rank_main(rank))).collect();
                    for (i, h) in handles.into_iter().enumerate() {
                        if h.join().is_err() {
                            // Body panics are caught inside rank_main;
                            // reaching here means the runtime itself
                            // panicked on this rank's thread.
                            shared.rank_failed(
                                lo + i,
                                "other",
                                "rank thread panicked outside the rank body".to_string(),
                            );
                        }
                    }
                });
            }
        }
        if let Some(fail) = shared.failure.lock().expect("failure mutex poisoned").take() {
            return Err(OversetError::RankPanicked {
                rank: fail.rank,
                phase: fail.phase,
                message: fail.message,
            });
        }
        let outs = outputs.into_inner().expect("outputs poisoned");
        Ok(outs.into_iter().map(|o| o.expect("missing rank output")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modern() -> MachineModel {
        MachineModel::modern()
    }

    /// Builder-form replacement for the deprecated `Universe::run` shim.
    fn run<R, F>(nranks: usize, machine: &MachineModel, f: F) -> Vec<RankOutput<R>>
    where
        R: Wire + Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Universe::builder().ranks(nranks).machine(machine).run(f)
    }

    #[test]
    fn single_rank_compute_time() {
        let m = MachineModel {
            name: "t",
            flops_per_sec: 100.0,
            class_efficiency: [1.0, 0.5, 1.0],
            cache: crate::machine::CacheModel::FLAT,
            latency: 0.0,
            bandwidth: 1.0,
            send_overhead: 0.0,
        };
        let out = run(1, &m, |c| {
            c.compute(50.0, WorkClass::Flow);
            c.compute(50.0, WorkClass::Search);
            c.now()
        });
        assert!((out[0].result - (0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_times_are_deterministic() {
        let m = modern();
        let run = || {
            run(2, &m, |c| {
                if c.rank() == 0 {
                    c.send(1, 7, 42.0f64, 1024);
                    c.recv::<f64>(1, 8)
                } else {
                    let v = c.recv::<f64>(0, 7);
                    c.send(0, 8, v * 2.0, 1024);
                    v
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a[0].result, 84.0);
        assert_eq!(a[0].stats.final_clock.to_bits(), b[0].stats.final_clock.to_bits());
        assert_eq!(a[1].stats.final_clock.to_bits(), b[1].stats.final_clock.to_bits());
        // Receiver clock includes transit time.
        assert!(a[1].stats.final_clock >= m.transit_time(1024));
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let m = modern();
        let out = run(4, &m, |c| {
            // Rank r does r units of work, then a barrier.
            c.compute(1.0e9 * c.rank() as f64, WorkClass::Flow);
            c.barrier();
            c.now()
        });
        let clocks: Vec<f64> = out.iter().map(|o| o.result).collect();
        for w in clocks.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-15, "clocks differ: {clocks:?}");
        }
        // Barrier clock at least the slowest rank's work time.
        let slowest = m.compute_time(3.0e9, WorkClass::Flow, 0.0);
        assert!(clocks[0] >= slowest);
    }

    #[test]
    fn allgather_returns_rank_ordered_values() {
        let out = run(5, &modern(), |c| c.allgather(c.rank() * 10, 8));
        for o in &out {
            assert_eq!(o.result, vec![0, 10, 20, 30, 40]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_cross() {
        let out = run(3, &modern(), |c| {
            let mut acc = Vec::new();
            for round in 0..50u64 {
                let v = c.allgather(round * 100 + c.rank() as u64, 8);
                acc.push(v.iter().sum::<u64>());
            }
            acc
        });
        for o in &out {
            for (round, &s) in o.result.iter().enumerate() {
                assert_eq!(s, 300 * round as u64 + 3);
            }
        }
    }

    #[test]
    fn allreduce_ops() {
        let out = run(4, &modern(), |c| {
            (
                c.allreduce_max(c.rank() as f64),
                c.allreduce_sum(1.5),
                c.allreduce_sum_usize(c.rank()),
            )
        });
        for o in &out {
            assert_eq!(o.result.0, 3.0);
            assert!((o.result.1 - 6.0).abs() < 1e-12);
            assert_eq!(o.result.2, 6);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = run(2, &modern(), |c| {
            if c.rank() == 0 {
                c.send(1, 1, 10i32, 4);
                c.send(1, 2, 20i32, 4);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = c.recv::<i32>(0, 2);
                let a = c.recv::<i32>(0, 1);
                a + b * 100
            }
        });
        assert_eq!(out[1].result, 2010);
    }

    #[test]
    fn phase_accounting_via_guards() {
        let m = MachineModel {
            name: "t",
            flops_per_sec: 1.0,
            class_efficiency: [1.0; 3],
            cache: crate::machine::CacheModel::FLAT,
            latency: 0.0,
            bandwidth: 1.0,
            send_overhead: 0.0,
        };
        let out = run(1, &m, |c| {
            {
                let mut ph = c.phase(Phase::Flow);
                ph.compute(2.0, WorkClass::Flow);
            }
            {
                let mut ph = c.phase(Phase::Connectivity);
                ph.compute(3.0, WorkClass::Search);
            }
        });
        let s = &out[0].stats;
        assert!((s.time[Phase::Flow as usize] - 2.0).abs() < 1e-12);
        assert!((s.time[Phase::Connectivity as usize] - 3.0).abs() < 1e-12);
        assert!((s.flops[Phase::Flow as usize] - 2.0).abs() < 1e-12);
        assert!((s.total_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn phase_guards_nest_and_restore() {
        let m = MachineModel {
            name: "t",
            flops_per_sec: 1.0,
            class_efficiency: [1.0; 3],
            cache: crate::machine::CacheModel::FLAT,
            latency: 0.0,
            bandwidth: 1.0,
            send_overhead: 0.0,
        };
        let out = run(1, &m, |c| {
            let mut outer = c.phase(Phase::Flow);
            outer.compute(1.0, WorkClass::Flow);
            {
                let mut inner = outer.phase(Phase::Balance);
                inner.compute(4.0, WorkClass::Other);
                assert_eq!(inner.current_phase(), Phase::Balance);
            }
            // Inner guard restored the outer phase.
            assert_eq!(outer.current_phase(), Phase::Flow);
            outer.compute(2.0, WorkClass::Flow);
        });
        let s = &out[0].stats;
        assert!((s.time[Phase::Flow as usize] - 3.0).abs() < 1e-12);
        assert!((s.time[Phase::Balance as usize] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn message_stats_counted() {
        let out = run(2, &modern(), |c| {
            if c.rank() == 0 {
                c.send(1, 0, (), 500);
                c.send(1, 1, (), 700);
            } else {
                c.recv::<()>(0, 0);
                c.recv::<()>(0, 1);
            }
        });
        assert_eq!(out[0].stats.msgs_sent, 2);
        assert_eq!(out[0].stats.bytes_sent, 1200);
        assert_eq!(out[1].stats.msgs_sent, 0);
    }

    #[test]
    fn per_phase_message_metrics() {
        let out = run(2, &modern(), |c| {
            if c.rank() == 0 {
                {
                    let mut ph = c.phase(Phase::Flow);
                    ph.send(1, 0, (), 100);
                }
                {
                    let mut ph = c.phase(Phase::Connectivity);
                    ph.send(1, 1, (), 300);
                    ph.send(1, 2, (), 50);
                }
            } else {
                c.recv::<()>(0, 0);
                c.recv::<()>(0, 1);
                c.recv::<()>(0, 2);
            }
        });
        let m = &out[0].metrics;
        assert_eq!(m.counter(names::msgs_in(Phase::Flow)), 1);
        assert_eq!(m.counter(names::bytes_in(Phase::Flow)), 100);
        assert_eq!(m.counter(names::msgs_in(Phase::Connectivity)), 2);
        assert_eq!(m.counter(names::bytes_in(Phase::Connectivity)), 350);
        // Receiver recorded stall observations.
        let stall = out[1].metrics.histogram(names::COMM_RECV_STALL).unwrap();
        assert_eq!(stall.count, 3);
        assert!(stall.max > 0.0);
    }

    #[test]
    fn tracing_records_phase_comm_and_compute_spans() {
        let out =
            Universe::builder().ranks(2).machine(&modern()).trace(TraceConfig::enabled()).run(
                |c| {
                    let mut ph = c.phase(Phase::Flow);
                    ph.compute(1.0e6, WorkClass::Flow);
                    if ph.rank() == 0 {
                        ph.send(1, 9, 7u8, 64);
                    } else {
                        ph.recv::<u8>(0, 9);
                    }
                    ph.barrier();
                },
            );
        for o in &out {
            let cats: Vec<&str> = o.trace.iter().map(|e| e.cat).collect();
            assert!(cats.contains(&"phase"), "{cats:?}");
            assert!(cats.contains(&"comm"));
            assert!(cats.contains(&"compute"));
            // Phase span covers the whole scope.
            let phase = o.trace.iter().find(|e| e.cat == "phase").unwrap();
            assert_eq!(phase.name, "flow");
            assert!(phase.dur > 0.0);
        }
        // Tracing off: no events.
        let off = run(1, &modern(), |c| {
            c.compute(1.0, WorkClass::Flow);
        });
        assert!(off[0].trace.is_empty());
    }

    #[test]
    fn comm_span_args_are_uniform_per_category() {
        // Every comm-category span must carry the full argument set its
        // name promises — the trace-analysis comm matrix and wait-state
        // classifier rely on it (docs/OBSERVABILITY.md span table).
        let out =
            Universe::builder().ranks(3).machine(&modern()).trace(TraceConfig::enabled()).run(
                |c| {
                    if c.rank() == 0 {
                        c.send(1, 3, 1u8, 64);
                        c.send(2, 4, 2u8, 128);
                    } else {
                        c.recv::<u8>(0, 2 + c.rank() as u64);
                    }
                    c.barrier();
                    c.allgather(c.rank(), 8);
                },
            );
        let has = |e: &TraceEvent, key: &str| e.args.iter().any(|(k, _)| *k == key);
        let mut seen = [0usize; 4]; // send, recv, barrier, allgather
        for o in &out {
            for e in o.trace.iter().filter(|e| e.cat == "comm") {
                match e.name {
                    "send" => {
                        seen[0] += 1;
                        for key in ["dst", "tag", "bytes"] {
                            assert!(has(e, key), "send span missing {key}: {e:?}");
                        }
                    }
                    "recv" => {
                        seen[1] += 1;
                        for key in ["src", "tag", "bytes", "stall", "idle"] {
                            assert!(has(e, key), "recv span missing {key}: {e:?}");
                        }
                    }
                    "barrier" | "allgather" => {
                        seen[if e.name == "barrier" { 2 } else { 3 }] += 1;
                        assert!(has(e, "bytes"), "collective span missing bytes: {e:?}");
                    }
                    other => panic!("unexpected comm span name {other:?}"),
                }
            }
        }
        assert_eq!(seen[0], 2, "expected two send spans");
        assert_eq!(seen[1], 2, "expected two recv spans");
        assert_eq!(seen[2], 3, "expected one barrier span per rank");
        assert_eq!(seen[3], 3, "expected one allgather span per rank");
        // The recv span's bytes echo what the sender charged, and its
        // stall/idle split is consistent with the span duration.
        let recv = out[1].trace.iter().find(|e| e.cat == "comm" && e.name == "recv").unwrap();
        let arg = |key: &str| {
            recv.args
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| match v {
                    ArgVal::U64(x) => *x as f64,
                    ArgVal::F64(x) => *x,
                    ArgVal::Str(_) => f64::NAN,
                })
                .unwrap()
        };
        assert_eq!(arg("bytes"), 64.0);
        assert!((arg("stall") - recv.dur).abs() < 1e-15);
        assert_eq!(arg("idle"), 0.0);
    }

    #[test]
    fn flight_recorder_collects_per_step_deltas() {
        let m = MachineModel {
            name: "t",
            flops_per_sec: 1.0,
            class_efficiency: [1.0; 3],
            cache: crate::machine::CacheModel::FLAT,
            latency: 0.0,
            bandwidth: 1.0,
            send_overhead: 0.0,
        };
        let out = run(2, &m, |c| {
            for step in 0..3u64 {
                {
                    let mut ph = c.phase(Phase::Flow);
                    ph.compute((step + 1) as f64, WorkClass::Flow);
                    if ph.rank() == 0 {
                        ph.send(1, step, (), 100);
                    } else {
                        ph.recv::<()>(0, step);
                    }
                    ph.barrier();
                }
                c.metrics_mut().add(names::CONN_SERVICED, 10 * (step + 1));
                c.end_step();
            }
        });
        for o in &out {
            assert_eq!(o.steps.len(), 3);
            assert_eq!(o.steps_dropped, 0);
            for (i, rec) in o.steps.iter().enumerate() {
                assert_eq!(rec.step, i as u64);
                // Per-step flow time covers at least the step's own compute
                // (plus comm/barrier time, which also accrues to the phase).
                assert!(
                    rec.time[Phase::Flow as usize] >= (i + 1) as f64,
                    "rank {} step {i}: {:?}",
                    o.stats.rank,
                    rec.time
                );
                assert_eq!(rec.serviced, 10 * (i as u64 + 1));
            }
            // The per-step deltas partition the rank's cumulative phase time.
            let flow_sum: f64 = o.steps.iter().map(|r| r.time[Phase::Flow as usize]).sum();
            let total_flow = o.stats.time[Phase::Flow as usize];
            assert!((flow_sum - total_flow).abs() < 1e-12 * total_flow.max(1.0));
            // Clocks are the rank clock at each boundary, nondecreasing.
            assert!(o.steps.windows(2).all(|w| w[0].clock <= w[1].clock));
        }
        assert_eq!(out[0].steps[0].msgs_sent, 1);
        assert_eq!(out[0].steps[0].bytes_sent, 100);
        assert_eq!(out[1].steps[0].msgs_sent, 0);
    }

    #[test]
    fn flight_ring_capacity_via_builder() {
        let out = Universe::builder().ranks(1).machine(&modern()).step_capacity(2).run(|c| {
            for _ in 0..5 {
                c.compute(1.0, WorkClass::Flow);
                c.end_step();
            }
        });
        assert_eq!(out[0].steps.len(), 2);
        assert_eq!(out[0].steps_dropped, 3);
        assert_eq!(out[0].steps[0].step, 3);
    }

    #[test]
    fn trace_filter_thins_universe_spans() {
        let cfg = TraceConfig::enabled()
            .with_filter(crate::trace::CategoryFilter::parse("phase").unwrap());
        let out = Universe::builder().ranks(1).machine(&modern()).trace(cfg).run(|c| {
            let mut ph = c.phase(Phase::Flow);
            ph.compute(1.0e6, WorkClass::Flow);
        });
        assert!(!out[0].trace.is_empty());
        assert!(out[0].trace.iter().all(|e| e.cat == "phase"), "{:?}", out[0].trace);
    }

    #[test]
    fn try_recv_type_mismatch_is_an_error() {
        let out = run(2, &modern(), |c| {
            if c.rank() == 0 {
                c.send(1, 5, 1.25f64, 8);
                Ok(())
            } else {
                c.try_recv::<u32>(0, 5).map(|_| ())
            }
        });
        assert!(out[0].result.is_ok());
        match &out[1].result {
            Err(OversetError::TypeMismatch { rank: 1, src: 0, tag: 5, .. }) => {}
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn mixed_type_collective_is_an_error_on_every_rank() {
        let out = run(2, &modern(), |c| {
            if c.rank() == 0 {
                c.try_allgather(1u32, 4).map(|_| ())
            } else {
                c.try_allgather(1.5f64, 8).map(|_| ())
            }
        });
        for o in &out {
            assert!(
                matches!(o.result, Err(OversetError::CollectiveMismatch { .. })),
                "expected CollectiveMismatch, got {:?}",
                o.result
            );
        }
    }

    #[test]
    fn working_set_changes_rate() {
        let m = MachineModel::ibm_sp2();
        let out = run(1, &m, |c| {
            c.set_working_set(1.0); // tiny: fast cache factor
            c.compute(1.0e6, WorkClass::Flow);
            let t_small = c.now();
            c.set_working_set(1e9); // huge: memory bound
            c.compute(1.0e6, WorkClass::Flow);
            (t_small, c.now() - t_small)
        });
        let (t_small, t_large) = out[0].result;
        assert!(t_large > 1.3 * t_small, "cache model had no effect");
    }

    // ---- M:N scheduler -------------------------------------------------

    /// A workload exercising every comm primitive plus phases and step
    /// boundaries, used to compare the two scheduler modes bit-for-bit.
    fn mixed_workload(c: &mut Comm) -> f64 {
        let me = c.rank();
        let n = c.size();
        for step in 0..4u64 {
            {
                let mut ph = c.phase(Phase::Flow);
                ph.compute(1.0e6 * (1.0 + me as f64), WorkClass::Flow);
                let right = (me + 1) % n;
                let left = (me + n - 1) % n;
                ph.send(right, 100 + step, me as f64 * 1.5 + step as f64, 256 + 32 * me);
                let v = ph.recv::<f64>(left, 100 + step);
                ph.compute(v.abs() * 10.0, WorkClass::Search);
            }
            {
                let mut ph = c.phase(Phase::Connectivity);
                let maxv = ph.allreduce_max(me as f64 * 0.25 + step as f64);
                ph.compute(maxv * 1.0e3, WorkClass::Other);
            }
            c.end_step();
        }
        c.barrier();
        c.now()
    }

    #[test]
    fn mn_clocks_bit_identical_to_thread_mode() {
        let m = MachineModel::ibm_sp2();
        let one_to_one = Universe::builder().ranks(16).machine(&m).run(mixed_workload);
        let mn = Universe::builder().ranks(16).machine(&m).max_threads(4).run(mixed_workload);
        for (a, b) in one_to_one.iter().zip(&mn) {
            assert_eq!(
                a.result.to_bits(),
                b.result.to_bits(),
                "rank {} clock differs between scheduler modes",
                a.stats.rank
            );
            assert_eq!(a.stats.final_clock.to_bits(), b.stats.final_clock.to_bits());
            assert_eq!(a.stats.msgs_sent, b.stats.msgs_sent);
            assert_eq!(a.stats.collectives, b.stats.collectives);
            assert_eq!(a.steps.len(), b.steps.len());
        }
    }

    #[test]
    fn many_virtual_ranks_on_few_threads() {
        // 128 virtual ranks on 4 workers: a ring exchange plus a collective
        // per rank, far beyond what 1:1 threading would need.
        let out = Universe::builder().ranks(128).machine(&modern()).max_threads(4).run(|c| {
            let me = c.rank();
            let n = c.size();
            c.send((me + 1) % n, 7, me, 8);
            let left = c.recv::<usize>((me + n - 1) % n, 7);
            let total = c.allreduce_sum_usize(left);
            c.end_step();
            total
        });
        assert_eq!(out.len(), 128);
        let expect: usize = (0..128).sum();
        for o in &out {
            assert_eq!(o.result, expect);
            assert_eq!(o.steps.len(), 1);
        }
    }

    // ---- panic handling ------------------------------------------------

    #[test]
    fn rank_panic_surfaces_error_not_hang() {
        let err = Universe::builder().ranks(16).machine(&modern()).try_run(|c| {
            if c.rank() == 7 {
                let _ph = c.phase(Phase::Connectivity);
                panic!("boom on rank 7");
            }
            // Every other rank blocks in a collective the panicking rank
            // never joins — they must be unblocked, not hang.
            c.barrier();
        });
        match err {
            Err(OversetError::RankPanicked { rank: 7, phase, message }) => {
                assert_eq!(phase, "connectivity");
                assert!(message.contains("boom on rank 7"), "message: {message}");
            }
            other => panic!("expected RankPanicked for rank 7, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_in_mn_mode_surfaces_error() {
        let err = Universe::builder().ranks(32).machine(&modern()).max_threads(4).try_run(|c| {
            if c.rank() == 13 {
                panic!("mn boom");
            }
            c.barrier();
        });
        match err {
            Err(OversetError::RankPanicked { rank: 13, phase, message }) => {
                assert_eq!(phase, "other");
                assert!(message.contains("mn boom"), "message: {message}");
            }
            other => panic!("expected RankPanicked for rank 13, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_unblocks_point_to_point_waits() {
        let err = Universe::builder().ranks(4).machine(&modern()).try_run(|c| {
            match c.rank() {
                0 => panic!("early exit"),
                // Rank 1 waits for a message rank 0 will never send.
                1 => {
                    let _ = c.try_recv::<u8>(0, 42);
                }
                _ => {}
            }
        });
        match err {
            Err(OversetError::RankPanicked { rank: 0, message, .. }) => {
                assert!(message.contains("early exit"), "message: {message}");
            }
            other => panic!("expected RankPanicked for rank 0, got {other:?}"),
        }
    }

    #[test]
    fn recv_from_finished_rank_errors() {
        let out = run(2, &modern(), |c| {
            if c.rank() == 0 {
                // Finish immediately without sending anything.
                Ok(())
            } else {
                c.try_recv::<u8>(0, 9).map(|_| ())
            }
        });
        assert!(out[0].result.is_ok());
        match &out[1].result {
            Err(OversetError::Disconnected { rank: 1, src: 0, tag: 9 }) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }
}
