//! The flight recorder: a bounded per-rank ring of per-timestep telemetry.
//!
//! The paper's central evidence is *time histories* — the load-imbalance
//! factor f(p) and the connectivity cost evolving step by step as bodies
//! move and Algorithm 2 repartitions (Figs. 10–12). Whole-run aggregates
//! (the metrics registry, [`crate::PerfSummary`]) cannot show that, so every
//! rank also keeps a [`FlightRecorder`]: at each step boundary the driver
//! calls [`crate::Comm::end_step`], which snapshots the phase-time and
//! metric counters and appends one [`StepRecord`] of deltas.
//!
//! The recorder is always on (one struct of plain numbers per step), reads
//! only state that already exists, and never touches the virtual clock —
//! physics and timings are bitwise identical with or without consumers, the
//! same invariant the tracer keeps. Records come back per rank in
//! [`crate::RankOutput::steps`]; `overset-report` aggregates them into the
//! run-level time series the `BENCH_*.json` reports serialize.
//!
//! Capacity is bounded (ring semantics): when more steps are recorded than
//! the configured capacity, the *oldest* records are evicted and counted in
//! [`FlightRecorder::dropped`] — consumers can see the truncation instead of
//! silently reading a hole-free series.

use crate::alloc::{AllocRecord, AllocSnapshot};
use crate::metrics::{names, MetricsRegistry};
use crate::stats::{RankStats, NUM_PHASES};
use crate::wire::{Wire, WireError, WireReader};
use std::collections::VecDeque;

/// Telemetry of one timestep on one rank: per-phase virtual time plus the
/// deltas of the step-relevant metric counters over the step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepRecord {
    /// Step index (0-based, monotonically increasing even when the ring
    /// evicts old records).
    pub step: u64,
    /// Virtual seconds spent per phase during this step.
    pub time: [f64; NUM_PHASES],
    /// Rank virtual clock at the end of the step.
    pub clock: f64,
    /// Search-request points serviced this step (the paper's I(p) sample).
    pub serviced: u64,
    /// Stencil-walk steps spent servicing donor searches this step — the
    /// direct measure of how well the inverse-map seeds (and warm restart
    /// hints) are working.
    pub walk_steps: u64,
    /// Search requests forwarded to another candidate rank this step —
    /// false-positive routing that occupancy pruning exists to cut.
    pub forwards: u64,
    /// Orphan points left without donors this step.
    pub orphans: u64,
    /// Warm-restart donor-cache hits / misses this step.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Messages / payload bytes sent this step.
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    /// Repartitions executed this step (0 or 1 in practice).
    pub repartitions: u64,
}

impl StepRecord {
    /// Warm-restart hit rate for this step, `None` when the cache was not
    /// consulted.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }
}

// Step records ride home from child processes inside `RankOutput`.
impl Wire for StepRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.step.encode(buf);
        self.time.encode(buf);
        self.clock.encode(buf);
        self.serviced.encode(buf);
        self.walk_steps.encode(buf);
        self.forwards.encode(buf);
        self.orphans.encode(buf);
        self.cache_hits.encode(buf);
        self.cache_misses.encode(buf);
        self.msgs_sent.encode(buf);
        self.bytes_sent.encode(buf);
        self.repartitions.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StepRecord {
            step: u64::decode(r)?,
            time: <[f64; NUM_PHASES]>::decode(r)?,
            clock: f64::decode(r)?,
            serviced: u64::decode(r)?,
            walk_steps: u64::decode(r)?,
            forwards: u64::decode(r)?,
            orphans: u64::decode(r)?,
            cache_hits: u64::decode(r)?,
            cache_misses: u64::decode(r)?,
            msgs_sent: u64::decode(r)?,
            bytes_sent: u64::decode(r)?,
            repartitions: u64::decode(r)?,
        })
    }
}

/// Counter snapshot at the previous step boundary.
#[derive(Clone, Copy, Debug, Default)]
struct Snapshot {
    time: [f64; NUM_PHASES],
    serviced: u64,
    walk_steps: u64,
    forwards: u64,
    orphans: u64,
    cache_hits: u64,
    cache_misses: u64,
    msgs_sent: u64,
    bytes_sent: u64,
    repartitions: u64,
}

/// Bounded ring of [`StepRecord`]s plus the snapshot needed to difference
/// the cumulative counters at each step boundary.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    records: VecDeque<StepRecord>,
    /// Per-step allocation deltas, kept in lockstep with `records` (same
    /// capacity, same eviction), so `dropped` covers both rings.
    alloc_records: VecDeque<AllocRecord>,
    dropped: u64,
    next_step: u64,
    snap: Snapshot,
    alloc_snap: AllocSnapshot,
}

/// Default ring capacity: far above any experiment in this workspace while
/// still bounding memory (~120 B/record → ~8 MiB/rank at the cap).
pub const DEFAULT_STEP_CAPACITY: usize = 65_536;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_STEP_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` most-recent records (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            records: VecDeque::new(),
            alloc_records: VecDeque::new(),
            dropped: 0,
            next_step: 0,
            snap: Snapshot::default(),
            alloc_snap: AllocSnapshot::default(),
        }
    }

    /// Close the current step: difference `stats`/`metrics`/`alloc` against
    /// the previous boundary and append one record pair, returning copies
    /// (streaming sinks persist them even after the ring evicts them).
    pub fn end_step(
        &mut self,
        stats: &RankStats,
        metrics: &MetricsRegistry,
        clock: f64,
        alloc: AllocSnapshot,
    ) -> (StepRecord, AllocRecord) {
        let mut time = [0.0; NUM_PHASES];
        for (p, t) in time.iter_mut().enumerate() {
            *t = stats.time[p] - self.snap.time[p];
        }
        let serviced = metrics.counter(names::CONN_SERVICED);
        let walk_steps = metrics.counter(names::CONN_WALK_STEPS);
        let forwards = metrics.counter(names::CONN_FORWARDS);
        let orphans = metrics.counter(names::CONN_ORPHANS);
        let hits = metrics.counter(names::CONN_CACHE_HIT);
        let misses = metrics.counter(names::CONN_CACHE_MISS);
        let reparts = metrics.counter(names::LB_REPARTITIONS);
        let rec = StepRecord {
            step: self.next_step,
            time,
            clock,
            serviced: serviced - self.snap.serviced,
            walk_steps: walk_steps - self.snap.walk_steps,
            forwards: forwards - self.snap.forwards,
            orphans: orphans - self.snap.orphans,
            cache_hits: hits - self.snap.cache_hits,
            cache_misses: misses - self.snap.cache_misses,
            msgs_sent: stats.msgs_sent - self.snap.msgs_sent,
            bytes_sent: stats.bytes_sent - self.snap.bytes_sent,
            repartitions: reparts - self.snap.repartitions,
        };
        let mut arec = AllocRecord { step: self.next_step, ..AllocRecord::default() };
        for p in 0..NUM_PHASES {
            arec.allocs[p] = alloc.allocs[p] - self.alloc_snap.allocs[p];
            arec.bytes[p] = alloc.bytes[p] - self.alloc_snap.bytes[p];
        }
        self.alloc_snap = alloc;
        self.next_step += 1;
        self.snap = Snapshot {
            time: stats.time,
            serviced,
            walk_steps,
            forwards,
            orphans,
            cache_hits: hits,
            cache_misses: misses,
            msgs_sent: stats.msgs_sent,
            bytes_sent: stats.bytes_sent,
            repartitions: reparts,
        };
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.alloc_records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
        self.alloc_records.push_back(arec);
        (rec, arec)
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &StepRecord> + '_ {
        self.records.iter()
    }

    /// Allocation records currently retained, oldest first (lockstep with
    /// [`FlightRecorder::records`]).
    pub fn alloc_records(&self) -> impl Iterator<Item = &AllocRecord> + '_ {
        self.alloc_records.iter()
    }

    /// Number of records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Steps recorded so far (including evicted ones).
    pub fn steps_recorded(&self) -> u64 {
        self.next_step
    }

    /// Consume the recorder, returning retained step and allocation records
    /// oldest-first plus the (shared) evicted count.
    pub fn into_records(self) -> (Vec<StepRecord>, Vec<AllocRecord>, u64) {
        (self.records.into_iter().collect(), self.alloc_records.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Phase;

    fn stats_with(flow: f64, msgs: u64, bytes: u64) -> RankStats {
        let mut s = RankStats::new(0);
        s.time[Phase::Flow as usize] = flow;
        s.msgs_sent = msgs;
        s.bytes_sent = bytes;
        s
    }

    #[test]
    fn records_are_per_step_deltas() {
        let mut fr = FlightRecorder::new(8);
        let mut m = MetricsRegistry::new();
        m.add(names::CONN_SERVICED, 10);
        fr.end_step(&stats_with(1.0, 3, 300), &m, 1.5, AllocSnapshot::default());
        m.add(names::CONN_SERVICED, 5);
        m.add(names::CONN_WALK_STEPS, 42);
        m.add(names::CONN_FORWARDS, 3);
        m.inc(names::CONN_CACHE_HIT);
        m.inc(names::LB_REPARTITIONS);
        fr.end_step(&stats_with(4.0, 7, 1000), &m, 5.0, AllocSnapshot::default());

        let recs: Vec<_> = fr.records().copied().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].step, 0);
        assert_eq!(recs[0].serviced, 10);
        assert_eq!(recs[0].msgs_sent, 3);
        assert!((recs[0].time[Phase::Flow as usize] - 1.0).abs() < 1e-15);
        assert_eq!(recs[1].step, 1);
        assert_eq!(recs[1].serviced, 5);
        assert_eq!(recs[1].walk_steps, 42);
        assert_eq!(recs[1].forwards, 3);
        assert_eq!(recs[0].walk_steps, 0);
        assert_eq!(recs[1].cache_hits, 1);
        assert_eq!(recs[1].repartitions, 1);
        assert_eq!(recs[1].msgs_sent, 4);
        assert_eq!(recs[1].bytes_sent, 700);
        assert!((recs[1].time[Phase::Flow as usize] - 3.0).abs() < 1e-15);
        assert_eq!(recs[1].clock, 5.0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new(2);
        let m = MetricsRegistry::new();
        for i in 0..5u64 {
            fr.end_step(&stats_with(i as f64, i, i), &m, i as f64, AllocSnapshot::default());
        }
        assert_eq!(fr.dropped(), 3);
        assert_eq!(fr.steps_recorded(), 5);
        let steps: Vec<u64> = fr.records().map(|r| r.step).collect();
        assert_eq!(steps, vec![3, 4]);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        let m = MetricsRegistry::new();
        for i in 0..3u64 {
            fr.end_step(&stats_with(i as f64, i, i), &m, i as f64, AllocSnapshot::default());
        }
        // A zero-capacity ring still retains the most recent record.
        let recs: Vec<_> = fr.records().copied().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].step, 2);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.steps_recorded(), 3);
    }

    #[test]
    fn capacity_one_keeps_latest_with_correct_deltas() {
        let mut fr = FlightRecorder::new(1);
        let m = MetricsRegistry::new();
        fr.end_step(&stats_with(1.0, 2, 20), &m, 1.0, AllocSnapshot::default());
        fr.end_step(&stats_with(4.0, 5, 70), &m, 4.0, AllocSnapshot::default());
        fr.end_step(&stats_with(9.0, 9, 150), &m, 9.0, AllocSnapshot::default());
        let (recs, _alloc, dropped) = fr.into_records();
        assert_eq!(dropped, 2);
        assert_eq!(recs.len(), 1);
        // Deltas difference against the previous *step boundary*, which
        // eviction must not disturb.
        assert_eq!(recs[0].step, 2);
        assert!((recs[0].time[Phase::Flow as usize] - 5.0).abs() < 1e-15);
        assert_eq!(recs[0].msgs_sent, 4);
        assert_eq!(recs[0].bytes_sent, 80);
    }

    #[test]
    fn eviction_spanning_a_repartition_step_keeps_accounting_exact() {
        // Repartitions at steps 1 (evicted) and 4 (retained): the retained
        // record must carry only its own repartition, the evicted one must
        // show up solely through `dropped`, and the cumulative-counter
        // snapshot must stay consistent across the eviction.
        let mut fr = FlightRecorder::new(2);
        let mut m = MetricsRegistry::new();
        for i in 0..5u64 {
            if i == 1 || i == 4 {
                m.inc(names::LB_REPARTITIONS);
            }
            fr.end_step(&stats_with(i as f64, i, i), &m, i as f64, AllocSnapshot::default());
        }
        assert_eq!(fr.dropped(), 3);
        assert_eq!(fr.steps_recorded(), 5);
        let recs: Vec<_> = fr.records().copied().collect();
        assert_eq!(recs.iter().map(|r| r.step).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(recs[0].repartitions, 0);
        assert_eq!(recs[1].repartitions, 1);
        // The repartition evicted with step 1 is not re-attributed to any
        // surviving record: retained total is 1 of the 2 recorded.
        let retained: u64 = recs.iter().map(|r| r.repartitions).sum();
        assert_eq!(retained, 1);
        assert_eq!(m.counter(names::LB_REPARTITIONS), 2);
    }

    #[test]
    fn alloc_records_are_per_step_deltas_in_lockstep() {
        let mut fr = FlightRecorder::new(2);
        let m = MetricsRegistry::new();
        let mut snap = AllocSnapshot::default();
        for i in 0..4u64 {
            snap.allocs[Phase::Connectivity as usize] += 10 + i;
            snap.bytes[Phase::Connectivity as usize] += 100 * (i + 1);
            fr.end_step(&stats_with(i as f64, i, i), &m, i as f64, snap);
        }
        let arecs: Vec<_> = fr.alloc_records().copied().collect();
        let srecs: Vec<_> = fr.records().copied().collect();
        assert_eq!(arecs.len(), srecs.len());
        assert_eq!(arecs.iter().map(|r| r.step).collect::<Vec<_>>(), vec![2, 3]);
        // Deltas, not cumulative totals, survive eviction intact.
        let conn = Phase::Connectivity as usize;
        assert_eq!(arecs[0].allocs[conn], 12);
        assert_eq!(arecs[0].bytes[conn], 300);
        assert_eq!(arecs[1].allocs[conn], 13);
        assert_eq!(arecs[1].bytes[conn], 400);
        assert_eq!(fr.dropped(), 2);
    }

    #[test]
    fn hit_rate_none_without_lookups() {
        let mut fr = FlightRecorder::new(4);
        let mut m = MetricsRegistry::new();
        fr.end_step(&RankStats::new(0), &m, 0.0, AllocSnapshot::default());
        m.add(names::CONN_CACHE_HIT, 3);
        m.add(names::CONN_CACHE_MISS, 1);
        fr.end_step(&RankStats::new(0), &m, 0.0, AllocSnapshot::default());
        let recs: Vec<_> = fr.records().copied().collect();
        assert_eq!(recs[0].cache_hit_rate(), None);
        assert_eq!(recs[1].cache_hit_rate(), Some(0.75));
    }
}
