//! Pluggable transport backends: one communication protocol, several ways
//! to move the bytes.
//!
//! The runtime in [`crate::runtime`] speaks a single rank-to-rank protocol
//! (tagged sends, deterministic virtual-time collectives, abort/finish
//! notifications). A [`Transport`] decides where the ranks live:
//!
//! * [`InProcess`] — every rank is a thread (or M:N coroutine) in this
//!   process, messages hop across in-memory mailboxes. This is the original
//!   backend, now one implementation among equals.
//! * [`ProcessPool`] — ranks are split into groups, each group runs in a
//!   **forked OS process** (a re-execution of the current executable), and
//!   all inter-group traffic travels over Unix sockets in the versioned
//!   wire format of [`crate::wire`]. The parent process runs no ranks; it
//!   is a star-topology router and collective aggregator.
//!
//! Virtual time is bit-identical across backends: message arrival stamps
//! are computed on the sending rank and travel in the frame, and collective
//! round clocks are an order-independent `f64::max` fold, so the bytes that
//! reach a rank's clock do not depend on which backend carried them.
//!
//! ### Child process lifecycle
//!
//! `ProcessPool::establish` re-executes `current_exe()` once per rank
//! group, passing the group's socket as **stdin** and an
//! `OVERSET_PROC_CHILD=<call>:<group>:<groups>:<ranks>` environment
//! variable. The child runs the same program; a global counter of
//! `ProcessPool::establish` calls identifies *which* universe the child
//! was spawned for (`<call>`). When the counter matches, the child adopts
//! the Child role for that universe, runs its rank group, ships results
//! back as wire frames and exits — so code after the universe never runs
//! in children. Earlier process-backed universes in the same program are
//! replayed with the child acting as parent (spawning its own bounded set
//! of grandchildren), which is why tests should keep one process-backed
//! universe per function and run it before any in-process comparison runs.
//!
//! See docs/TRANSPORT.md for the frame grammar and failure semantics.

use crate::error::OversetError;
use crate::wire::{Wire, WireError, WireReader, WIRE_SCHEMA_VERSION};
use std::collections::{BTreeMap, HashMap};
use std::env;
use std::fmt;
use std::io::{self, Read, Write};
use std::os::fd::{BorrowedFd, OwnedFd};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable carrying a child's identity:
/// `<call_index>:<group>:<ngroups>:<nranks>`.
pub(crate) const ENV_CHILD: &str = "OVERSET_PROC_CHILD";

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Which transport a universe runs on. Carried by value in
/// [`crate::runtime::UniverseBuilder`] and `CaseConfig`-style drivers so
/// configuration stays `Clone + Debug + PartialEq`.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum TransportConfig {
    /// Ranks as threads/coroutines in this process (the default).
    #[default]
    InProcess,
    /// Ranks split across `processes` forked OS processes.
    Process {
        /// Number of rank-group processes to fork (clamped to the rank
        /// count at establish time; at least 1).
        processes: usize,
        /// Arguments passed to the re-executed binary. `None` replays this
        /// process's own CLI arguments — correct for standalone binaries.
        /// Tests **must** target themselves, e.g.
        /// `vec!["--exact".into(), "module::test_fn".into()]`, so the child
        /// replays only the spawning test.
        spawn_args: Option<Vec<String>>,
    },
}

impl TransportConfig {
    /// Multi-process transport with default spawn arguments.
    pub fn process(processes: usize) -> Self {
        TransportConfig::Process { processes, spawn_args: None }
    }

    /// Multi-process transport for use inside a `cargo test` binary:
    /// `test_path` must be the full path of the *calling* test function
    /// (e.g. `"transport_conformance::send_recv_proc"`).
    pub fn process_for_test(processes: usize, test_path: &str) -> Self {
        TransportConfig::Process {
            processes,
            spawn_args: Some(vec!["--exact".into(), test_path.into()]),
        }
    }

    /// Parse a CLI spelling: `inproc`, `proc` (two processes) or `proc:N`.
    pub fn parse(s: &str) -> Result<Self, OversetError> {
        match s {
            "inproc" => Ok(TransportConfig::InProcess),
            "proc" => Ok(TransportConfig::process(2)),
            other => {
                let n = other
                    .strip_prefix("proc:")
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        OversetError::Config(format!(
                            "unknown transport '{other}' (expected inproc, proc or proc:N)"
                        ))
                    })?;
                Ok(TransportConfig::process(n))
            }
        }
    }

    /// Build the backend this configuration names.
    pub fn instantiate(&self) -> Box<dyn Transport> {
        match self {
            TransportConfig::InProcess => Box::new(InProcess),
            TransportConfig::Process { processes, spawn_args } => {
                Box::new(ProcessPool { processes: *processes, spawn_args: spawn_args.clone() })
            }
        }
    }
}

impl fmt::Display for TransportConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportConfig::InProcess => write!(f, "inproc"),
            TransportConfig::Process { processes, .. } => write!(f, "proc:{processes}"),
        }
    }
}

// ---------------------------------------------------------------------------
// The trait and its two backends
// ---------------------------------------------------------------------------

/// A way to connect `nranks` ranks into one universe.
///
/// `establish` is called once per `try_run`; the returned [`Fabric`] tells
/// the runtime which role this *process* plays (run everything locally,
/// run a rank subrange as a child, or route frames as the parent).
pub trait Transport: fmt::Debug + Send + Sync {
    /// Stable short name (`"inproc"`, `"proc"`) used in logs and metrics.
    fn name(&self) -> &'static str;

    /// Connect the universe. May fork processes and block on handshakes.
    fn establish(&self, nranks: usize) -> Result<Fabric, OversetError>;
}

/// The original single-process backend: all ranks share this process.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcess;

impl Transport for InProcess {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn establish(&self, _nranks: usize) -> Result<Fabric, OversetError> {
        Ok(Fabric(FabricInner::Local))
    }
}

/// Multi-process backend: rank groups in forked re-executions of the
/// current binary, wired to a router in the parent over Unix sockets.
#[derive(Clone, Debug)]
pub struct ProcessPool {
    pub processes: usize,
    pub spawn_args: Option<Vec<String>>,
}

/// What `establish` decided this process is.
pub struct Fabric(pub(crate) FabricInner);

pub(crate) enum FabricInner {
    /// Run every rank in this process (the in-process backend).
    Local,
    /// This process is a forked child owning ranks `lo..hi`.
    Child(ChildFabric),
    /// This process is the parent router; it runs no ranks.
    Parent(ParentFabric),
}

/// Ranks `[g*n/k, (g+1)*n/k)` for group `g` of `k`: contiguous, within one
/// point of even, exhaustive.
pub(crate) fn group_range(g: usize, ngroups: usize, nranks: usize) -> (usize, usize) {
    (g * nranks / ngroups, (g + 1) * nranks / ngroups)
}

/// Global count of `ProcessPool::establish` calls in this process. A child
/// identifies "its" universe by this counter matching the `<call_index>`
/// in [`ENV_CHILD`]; the parent uses per-spawn-key counters instead (see
/// [`next_call_index`]) because its own global count includes universes the
/// child will never replay.
static ESTABLISH_CALLS: AtomicUsize = AtomicUsize::new(0);

/// Per-spawn-key spawn counter. Children re-execute exactly the command in
/// `spawn_args`, so the n-th spawn under one key corresponds to the n-th
/// establish call the child performs.
fn next_call_index(key: &str) -> usize {
    static COUNTERS: OnceLock<Mutex<HashMap<String, usize>>> = OnceLock::new();
    let mut map = COUNTERS.get_or_init(Default::default).lock().unwrap();
    let c = map.entry(key.to_string()).or_insert(0);
    let i = *c;
    *c += 1;
    i
}

struct ChildSpec {
    call_index: usize,
    group: usize,
    ngroups: usize,
    nranks: usize,
}

impl ChildSpec {
    fn parse(s: &str) -> Result<ChildSpec, OversetError> {
        let parts: Vec<usize> = s
            .split(':')
            .map(|p| p.parse().ok())
            .collect::<Option<_>>()
            .ok_or_else(|| OversetError::Config(format!("malformed {ENV_CHILD}={s}")))?;
        if parts.len() != 4 {
            return Err(OversetError::Config(format!("malformed {ENV_CHILD}={s}")));
        }
        Ok(ChildSpec { call_index: parts[0], group: parts[1], ngroups: parts[2], nranks: parts[3] })
    }
}

impl Transport for ProcessPool {
    fn name(&self) -> &'static str {
        "proc"
    }

    fn establish(&self, nranks: usize) -> Result<Fabric, OversetError> {
        if nranks == 0 {
            return Err(OversetError::Setup("cannot establish a 0-rank fabric".into()));
        }
        let my_index = ESTABLISH_CALLS.fetch_add(1, Ordering::SeqCst);
        if let Ok(spec) = env::var(ENV_CHILD) {
            let spec = ChildSpec::parse(&spec)?;
            if spec.call_index == my_index {
                if spec.nranks != nranks {
                    return Err(OversetError::Setup(format!(
                        "child spawned for a {}-rank universe reached a {}-rank establish \
                         (non-deterministic replay?)",
                        spec.nranks, nranks
                    )));
                }
                return Ok(Fabric(FabricInner::Child(ChildFabric::connect(&spec)?)));
            }
            // Not our universe: the program must still execute it so control
            // flow reaches the establish call we were actually spawned for,
            // but its *results* are all we need — and those are bit-identical
            // in-process (the determinism contract). Running it locally
            // instead of as a parent keeps an n-universe program's replay
            // cost quadratic rather than forking grandchildren exponentially.
            return Ok(Fabric(FabricInner::Local));
        }
        self.spawn_children(nranks).map(|pf| Fabric(FabricInner::Parent(pf)))
    }
}

impl ProcessPool {
    fn spawn_children(&self, nranks: usize) -> Result<ParentFabric, OversetError> {
        let ngroups = self.processes.max(1).min(nranks);
        let spawn_args: Vec<String> = match &self.spawn_args {
            Some(a) => a.clone(),
            None => env::args().skip(1).collect(),
        };
        let key = spawn_args.join("\u{1f}");
        let call_index = next_call_index(&key);
        let exe = env::current_exe()
            .map_err(|e| OversetError::Io(format!("cannot locate current executable: {e}")))?;

        let mut children: Vec<Child> = Vec::with_capacity(ngroups);
        let mut sockets: Vec<UnixStream> = Vec::with_capacity(ngroups);
        let result = (|| {
            for g in 0..ngroups {
                let (parent_sock, child_sock) =
                    UnixStream::pair().map_err(|e| OversetError::Io(format!("socketpair: {e}")))?;
                let child_fd: OwnedFd = child_sock.into();
                let spec = format!("{call_index}:{g}:{ngroups}:{nranks}");
                let child = Command::new(&exe)
                    .args(&spawn_args)
                    .stdin(Stdio::from(child_fd))
                    .stdout(Stdio::null())
                    .env(ENV_CHILD, &spec)
                    .spawn()
                    .map_err(|e| OversetError::Io(format!("spawn rank-group process: {e}")))?;
                children.push(child);
                sockets.push(parent_sock);
            }
            // Handshake: every child announces itself before any rank runs,
            // so a child that dies during startup is caught here.
            for (g, sock) in sockets.iter().enumerate() {
                let (lo, hi) = group_range(g, ngroups, nranks);
                match read_frame(sock) {
                    Ok(Some(Frame::Hello { version, group, lo: clo, hi: chi, nranks: cn })) => {
                        if version != WIRE_SCHEMA_VERSION
                            || group != g
                            || clo != lo
                            || chi != hi
                            || cn != nranks
                        {
                            return Err(OversetError::Setup(format!(
                                "rank-group {g} handshake mismatch \
                                 (got v{version} group {group} ranks {clo}..{chi}/{cn}, \
                                 expected v{WIRE_SCHEMA_VERSION} group {g} ranks {lo}..{hi}/{nranks})"
                            )));
                        }
                    }
                    Ok(other) => {
                        return Err(OversetError::Setup(format!(
                            "rank-group {g} {} before handshake",
                            if other.is_none() { "exited" } else { "sent a non-hello frame" }
                        )));
                    }
                    Err(e) => {
                        return Err(OversetError::Io(format!("rank-group {g} handshake: {e}")));
                    }
                }
            }
            Ok(())
        })();
        if let Err(e) = result {
            for child in &mut children {
                let _ = child.kill();
                let _ = child.wait();
            }
            return Err(e);
        }
        Ok(ParentFabric { children, sockets, nranks, ngroups })
    }
}

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

/// One unit on a parent<->child socket: `[u32 len][u8 kind][body]`, body
/// fields in [`Wire`] encoding. Everything after the handshake is
/// symmetric — children emit `Data`/`Coll`/`Finish`/`Abort`/`Done`/`Bye`,
/// the parent emits `Data` (forwarded), `CollResult`, `Finish` and `Abort`.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Frame {
    /// Child -> parent, once, immediately after connecting.
    Hello { version: u32, group: usize, lo: usize, hi: usize, nranks: usize },
    /// A tagged point-to-point message for rank `dst`. `arrival` is the
    /// virtual arrival stamp computed by the *sender*; `bytes` is the
    /// logical message size charged to the machine model.
    Data {
        dst: usize,
        src: usize,
        tag: u64,
        arrival: f64,
        bytes: usize,
        type_hash: u64,
        payload: Vec<u8>,
    },
    /// One rank's contribution to collective round `round`.
    Coll { round: u64, rank: usize, clock: f64, type_hash: u64, payload: Vec<u8> },
    /// Parent -> every child once all `nranks` contributions arrived.
    /// `round_clock` is the max over contributed clocks; `poison` flags a
    /// cross-rank type mismatch; `blobs[r]` is rank r's payload.
    CollResult { round: u64, round_clock: f64, poison: bool, blobs: Vec<Vec<u8>> },
    /// Rank `rank` returned from its body (peers may stop waiting on it).
    Finish { rank: usize },
    /// Rank `rank` panicked or failed; the universe is shutting down.
    Abort { rank: usize, phase: String, message: String },
    /// Rank `rank`'s encoded `RankOutput` (child -> parent).
    Done { rank: usize, payload: Vec<u8> },
    /// Clean goodbye: the child is about to exit deliberately. EOF without
    /// a preceding `Bye` means the process died and is treated as a panic.
    Bye,
}

impl Frame {
    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello { version, group, lo, hi, nranks } => {
                buf.push(0);
                version.encode(buf);
                group.encode(buf);
                lo.encode(buf);
                hi.encode(buf);
                nranks.encode(buf);
            }
            Frame::Data { dst, src, tag, arrival, bytes, type_hash, payload } => {
                buf.push(1);
                dst.encode(buf);
                src.encode(buf);
                tag.encode(buf);
                arrival.encode(buf);
                bytes.encode(buf);
                type_hash.encode(buf);
                payload.encode(buf);
            }
            Frame::Coll { round, rank, clock, type_hash, payload } => {
                buf.push(2);
                round.encode(buf);
                rank.encode(buf);
                clock.encode(buf);
                type_hash.encode(buf);
                payload.encode(buf);
            }
            Frame::CollResult { round, round_clock, poison, blobs } => {
                buf.push(3);
                round.encode(buf);
                round_clock.encode(buf);
                poison.encode(buf);
                blobs.encode(buf);
            }
            Frame::Finish { rank } => {
                buf.push(4);
                rank.encode(buf);
            }
            Frame::Abort { rank, phase, message } => {
                buf.push(5);
                rank.encode(buf);
                phase.encode(buf);
                message.encode(buf);
            }
            Frame::Done { rank, payload } => {
                buf.push(6);
                rank.encode(buf);
                payload.encode(buf);
            }
            Frame::Bye => buf.push(7),
        }
    }

    fn decode_body(bytes: &[u8]) -> Result<Frame, WireError> {
        let r = &mut WireReader::new(bytes);
        let frame = match r.u8()? {
            0 => Frame::Hello {
                version: u32::decode(r)?,
                group: usize::decode(r)?,
                lo: usize::decode(r)?,
                hi: usize::decode(r)?,
                nranks: usize::decode(r)?,
            },
            1 => Frame::Data {
                dst: usize::decode(r)?,
                src: usize::decode(r)?,
                tag: u64::decode(r)?,
                arrival: f64::decode(r)?,
                bytes: usize::decode(r)?,
                type_hash: u64::decode(r)?,
                payload: Vec::decode(r)?,
            },
            2 => Frame::Coll {
                round: u64::decode(r)?,
                rank: usize::decode(r)?,
                clock: f64::decode(r)?,
                type_hash: u64::decode(r)?,
                payload: Vec::decode(r)?,
            },
            3 => Frame::CollResult {
                round: u64::decode(r)?,
                round_clock: f64::decode(r)?,
                poison: bool::decode(r)?,
                blobs: Vec::decode(r)?,
            },
            4 => Frame::Finish { rank: usize::decode(r)? },
            5 => Frame::Abort {
                rank: usize::decode(r)?,
                phase: String::decode(r)?,
                message: String::decode(r)?,
            },
            6 => Frame::Done { rank: usize::decode(r)?, payload: Vec::decode(r)? },
            7 => Frame::Bye,
            _ => return Err(WireError::Invalid("frame kind")),
        };
        if r.remaining() != 0 {
            return Err(WireError::Trailing { remaining: r.remaining() });
        }
        Ok(frame)
    }
}

/// Write one frame. Callers serialise writers per socket (a `Mutex` around
/// the stream handle); `write_all` on the borrowed stream keeps the frame
/// contiguous.
pub(crate) fn write_frame(sock: &UnixStream, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::with_capacity(64);
    frame.encode_body(&mut body);
    let mut msg = Vec::with_capacity(4 + body.len());
    msg.extend_from_slice(&(body.len() as u32).to_le_bytes());
    msg.extend_from_slice(&body);
    let mut w: &UnixStream = sock;
    w.write_all(&msg)
}

/// Read one frame. `Ok(None)` is a clean EOF **at a frame boundary**; EOF
/// mid-frame is an error (the peer died while writing).
pub(crate) fn read_frame(sock: &UnixStream) -> io::Result<Option<Frame>> {
    let mut r: &UnixStream = sock;
    let mut len = [0u8; 4];
    match r.read(&mut len[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(sock),
        Err(e) => return Err(e),
    }
    r.read_exact(&mut len[1..])?;
    let n = u32::from_le_bytes(len) as usize;
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Frame::decode_body(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// The child role: this process owns ranks `lo..hi` of `nranks`.
pub(crate) struct ChildFabric {
    sock: UnixStream,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    pub(crate) nranks: usize,
}

impl ChildFabric {
    fn connect(spec: &ChildSpec) -> Result<ChildFabric, OversetError> {
        // The parent passed our socket as stdin (fd 0).
        let fd = unsafe { BorrowedFd::borrow_raw(0) }
            .try_clone_to_owned()
            .map_err(|e| OversetError::Io(format!("dup child socket: {e}")))?;
        let sock = UnixStream::from(fd);
        let (lo, hi) = group_range(spec.group, spec.ngroups, spec.nranks);
        write_frame(
            &sock,
            &Frame::Hello {
                version: WIRE_SCHEMA_VERSION,
                group: spec.group,
                lo,
                hi,
                nranks: spec.nranks,
            },
        )
        .map_err(|e| OversetError::Io(format!("handshake: {e}")))?;
        Ok(ChildFabric { sock, lo, hi, nranks: spec.nranks })
    }

    /// Split into the shared write-side handle ranks use and the read-side
    /// stream the runtime's router thread drains.
    pub(crate) fn split(self) -> Result<(Arc<ProcLink>, UnixStream), OversetError> {
        let reader = self
            .sock
            .try_clone()
            .map_err(|e| OversetError::Io(format!("dup child socket: {e}")))?;
        let link = Arc::new(ProcLink {
            writer: Mutex::new(self.sock),
            lo: self.lo,
            hi: self.hi,
            coll: Mutex::new(ProcCollInner { rounds: BTreeMap::new(), waiters: Vec::new() }),
            collcv: Condvar::new(),
            parent_gone: AtomicBool::new(false),
        });
        Ok((link, reader))
    }
}

/// Child-side handle to the parent router, shared by every local rank and
/// the runtime's socket-reader thread.
///
/// Write errors are deliberately swallowed: if the parent is gone the
/// reader thread observes EOF and aborts the universe through the normal
/// failure path, which beats every rank individually racing to report a
/// broken pipe.
pub(crate) struct ProcLink {
    writer: Mutex<UnixStream>,
    /// First local rank (inclusive).
    pub(crate) lo: usize,
    /// Last local rank (exclusive).
    pub(crate) hi: usize,
    /// Collective rounds resolved by the parent, keyed by round number.
    pub(crate) coll: Mutex<ProcCollInner>,
    pub(crate) collcv: Condvar,
    pub(crate) parent_gone: AtomicBool,
}

pub(crate) struct ProcCollInner {
    pub(crate) rounds: BTreeMap<u64, ProcRound>,
    /// Ranks blocked on a round under the M:N scheduler; the reader thread
    /// drains and wakes these when a result lands.
    pub(crate) waiters: Vec<usize>,
}

/// A resolved collective round, consumed once by each local rank.
pub(crate) struct ProcRound {
    pub(crate) round_clock: f64,
    pub(crate) poison: bool,
    pub(crate) blobs: Arc<Vec<Vec<u8>>>,
    pub(crate) readers_left: usize,
}

impl ProcLink {
    fn write(&self, frame: &Frame) {
        let sock = self.writer.lock().unwrap();
        if write_frame(&sock, frame).is_err() {
            self.parent_gone.store(true, Ordering::SeqCst);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_data(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        arrival: f64,
        bytes: usize,
        type_hash: u64,
        payload: Vec<u8>,
    ) {
        self.write(&Frame::Data { dst, src, tag, arrival, bytes, type_hash, payload });
    }

    pub(crate) fn send_coll(
        &self,
        round: u64,
        rank: usize,
        clock: f64,
        type_hash: u64,
        payload: Vec<u8>,
    ) {
        self.write(&Frame::Coll { round, rank, clock, type_hash, payload });
    }

    pub(crate) fn send_finish(&self, rank: usize) {
        self.write(&Frame::Finish { rank });
    }

    pub(crate) fn send_abort(&self, rank: usize, phase: &str, message: &str) {
        self.write(&Frame::Abort { rank, phase: phase.to_string(), message: message.to_string() });
    }

    pub(crate) fn send_done(&self, rank: usize, payload: Vec<u8>) {
        self.write(&Frame::Done { rank, payload });
    }

    pub(crate) fn send_bye(&self) {
        self.write(&Frame::Bye);
    }
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

/// The parent role: a router over `ngroups` child processes. Runs no ranks.
pub(crate) struct ParentFabric {
    children: Vec<Child>,
    sockets: Vec<UnixStream>,
    pub(crate) nranks: usize,
    ngroups: usize,
}

struct CollAcc {
    arrived: usize,
    max_clock: f64,
    hash: Option<u64>,
    poison: bool,
    blobs: Vec<Option<Vec<u8>>>,
}

struct RouterState {
    /// Write handles, one per child, rank-group index order.
    writers: Vec<Mutex<UnixStream>>,
    /// `owner[rank]` = index of the child that runs `rank`.
    owner: Vec<usize>,
    nranks: usize,
    ngroups: usize,
    colls: Mutex<BTreeMap<u64, CollAcc>>,
    /// First failure wins: `(rank, phase, message)`.
    failure: Mutex<Option<(usize, String, String)>>,
    done: Mutex<Vec<Option<Vec<u8>>>>,
    /// Whether child g said goodbye before its socket closed.
    bye: Vec<AtomicBool>,
}

impl RouterState {
    fn broadcast_except(&self, skip: Option<usize>, frame: &Frame) {
        for (g, w) in self.writers.iter().enumerate() {
            if Some(g) != skip {
                let sock = w.lock().unwrap();
                // A dead child's pipe errors here; its own reader thread
                // reports the death, so the forward failure is ignorable.
                let _ = write_frame(&sock, frame);
            }
        }
    }

    fn child_died(&self, g: usize) {
        let (lo, _) = group_range(g, self.ngroups, self.nranks);
        let mut fail = self.failure.lock().unwrap();
        if fail.is_none() {
            *fail = Some((lo, "other".into(), "rank-group process exited unexpectedly".into()));
        }
        drop(fail);
        self.broadcast_except(
            Some(g),
            &Frame::Abort {
                rank: lo,
                phase: "other".into(),
                message: "rank-group process exited unexpectedly".into(),
            },
        );
    }

    /// Drain one child's socket until `Bye`/EOF, forwarding and
    /// aggregating. Runs on its own thread per child.
    fn route(&self, g: usize, sock: &UnixStream) {
        loop {
            let frame = match read_frame(sock) {
                Ok(Some(f)) => f,
                Ok(None) | Err(_) => {
                    if !self.bye[g].load(Ordering::SeqCst) {
                        self.child_died(g);
                    }
                    return;
                }
            };
            match frame {
                Frame::Data { dst, .. } => {
                    if dst < self.nranks {
                        let w = self.writers[self.owner[dst]].lock().unwrap();
                        let _ = write_frame(&w, &frame);
                    }
                }
                Frame::Coll { round, rank, clock, type_hash, payload } => {
                    let mut colls = self.colls.lock().unwrap();
                    let acc = colls.entry(round).or_insert_with(|| CollAcc {
                        arrived: 0,
                        max_clock: f64::NEG_INFINITY,
                        hash: None,
                        poison: false,
                        blobs: vec![None; self.nranks],
                    });
                    acc.arrived += 1;
                    acc.max_clock = acc.max_clock.max(clock);
                    match acc.hash {
                        None => acc.hash = Some(type_hash),
                        Some(h) if h != type_hash => acc.poison = true,
                        Some(_) => {}
                    }
                    if rank < self.nranks {
                        acc.blobs[rank] = Some(payload);
                    }
                    if acc.arrived == self.nranks {
                        let acc = colls.remove(&round).unwrap();
                        drop(colls);
                        let blobs = acc.blobs.into_iter().map(Option::unwrap_or_default).collect();
                        self.broadcast_except(
                            None,
                            &Frame::CollResult {
                                round,
                                round_clock: acc.max_clock,
                                poison: acc.poison,
                                blobs,
                            },
                        );
                    }
                }
                Frame::Finish { rank } => {
                    self.broadcast_except(Some(g), &Frame::Finish { rank });
                }
                Frame::Abort { rank, phase, message } => {
                    {
                        let mut fail = self.failure.lock().unwrap();
                        if fail.is_none() {
                            *fail = Some((rank, phase.clone(), message.clone()));
                        }
                    }
                    self.broadcast_except(Some(g), &Frame::Abort { rank, phase, message });
                }
                Frame::Done { rank, payload } => {
                    if rank < self.nranks {
                        self.done.lock().unwrap()[rank] = Some(payload);
                    }
                }
                Frame::Bye => {
                    self.bye[g].store(true, Ordering::SeqCst);
                    return;
                }
                // Handshake is over and CollResult only flows parent→child;
                // ignore strays rather than killing the run.
                Frame::Hello { .. } | Frame::CollResult { .. } => {}
            }
        }
    }
}

impl ParentFabric {
    /// Route until every child is done (or dead), reap the processes, and
    /// either surface the first failure or decode every rank's output.
    pub(crate) fn run<R: Wire>(self) -> Result<Vec<crate::runtime::RankOutput<R>>, OversetError> {
        let ParentFabric { mut children, sockets, nranks, ngroups } = self;
        let mut owner = vec![0usize; nranks];
        for g in 0..ngroups {
            let (lo, hi) = group_range(g, ngroups, nranks);
            for o in &mut owner[lo..hi] {
                *o = g;
            }
        }
        let mut writers = Vec::with_capacity(ngroups);
        for s in &sockets {
            writers.push(Mutex::new(
                s.try_clone().map_err(|e| OversetError::Io(format!("dup router socket: {e}")))?,
            ));
        }
        let state = RouterState {
            writers,
            owner,
            nranks,
            ngroups,
            colls: Mutex::new(BTreeMap::new()),
            failure: Mutex::new(None),
            done: Mutex::new(vec![None; nranks]),
            bye: (0..ngroups).map(|_| AtomicBool::new(false)).collect(),
        };
        std::thread::scope(|scope| {
            for (g, sock) in sockets.iter().enumerate() {
                let state = &state;
                scope.spawn(move || state.route(g, sock));
            }
        });
        for child in &mut children {
            let _ = child.wait();
        }
        if let Some((rank, phase, message)) = state.failure.into_inner().unwrap() {
            return Err(OversetError::RankPanicked {
                rank,
                phase: crate::wire::intern(&phase),
                message,
            });
        }
        let done = state.done.into_inner().unwrap();
        let mut outputs = Vec::with_capacity(nranks);
        for (rank, slot) in done.into_iter().enumerate() {
            let bytes = slot.ok_or_else(|| {
                OversetError::Setup(format!("rank {rank} finished without reporting output"))
            })?;
            outputs.push(crate::runtime::RankOutput::<R>::from_wire_bytes(&bytes).map_err(
                |e| OversetError::WireDecode {
                    rank,
                    src: rank,
                    tag: 0,
                    detail: format!("rank output: {e}"),
                },
            )?);
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spellings() {
        assert_eq!(TransportConfig::parse("inproc").unwrap(), TransportConfig::InProcess);
        assert_eq!(TransportConfig::parse("proc").unwrap(), TransportConfig::process(2));
        assert_eq!(TransportConfig::parse("proc:7").unwrap(), TransportConfig::process(7));
        assert!(TransportConfig::parse("proc:0").is_err());
        assert!(TransportConfig::parse("tcp").is_err());
        assert!(TransportConfig::parse("proc:x").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for cfg in [TransportConfig::InProcess, TransportConfig::process(3)] {
            assert_eq!(TransportConfig::parse(&cfg.to_string()).unwrap(), cfg);
        }
    }

    #[test]
    fn group_ranges_partition_ranks() {
        for nranks in 1..12 {
            for ngroups in 1..=nranks {
                let mut covered = Vec::new();
                for g in 0..ngroups {
                    let (lo, hi) = group_range(g, ngroups, nranks);
                    assert!(lo <= hi && hi <= nranks);
                    assert!(hi - lo >= nranks / ngroups);
                    assert!(hi - lo <= nranks / ngroups + 1);
                    covered.extend(lo..hi);
                }
                assert_eq!(covered, (0..nranks).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn frames_roundtrip() {
        let frames = vec![
            Frame::Hello { version: 1, group: 2, lo: 4, hi: 8, nranks: 16 },
            Frame::Data {
                dst: 3,
                src: 1,
                tag: 42,
                arrival: 1.5,
                bytes: 4096,
                type_hash: 0xdead_beef,
                payload: vec![1, 2, 3],
            },
            Frame::Coll { round: 9, rank: 0, clock: -0.0, type_hash: 7, payload: vec![] },
            Frame::CollResult {
                round: 9,
                round_clock: 2.25,
                poison: false,
                blobs: vec![vec![1], vec![], vec![2, 3]],
            },
            Frame::Finish { rank: 5 },
            Frame::Abort { rank: 1, phase: "flow".into(), message: "boom".into() },
            Frame::Done { rank: 0, payload: vec![9; 32] },
            Frame::Bye,
        ];
        for f in frames {
            let mut body = Vec::new();
            f.encode_body(&mut body);
            assert_eq!(Frame::decode_body(&body).unwrap(), f);
        }
    }

    #[test]
    fn frames_cross_a_socket() {
        let (a, b) = UnixStream::pair().unwrap();
        let sent = Frame::Data {
            dst: 0,
            src: 1,
            tag: 7,
            arrival: 3.5,
            bytes: 100,
            type_hash: 11,
            payload: vec![0xab; 17],
        };
        write_frame(&a, &sent).unwrap();
        write_frame(&a, &Frame::Bye).unwrap();
        assert_eq!(read_frame(&b).unwrap(), Some(sent));
        assert_eq!(read_frame(&b).unwrap(), Some(Frame::Bye));
        drop(a);
        assert_eq!(read_frame(&b).unwrap(), None); // clean EOF at boundary
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let (a, b) = UnixStream::pair().unwrap();
        {
            let mut w: &UnixStream = &a;
            // Length promises 100 bytes; deliver 2 and hang up.
            w.write_all(&100u32.to_le_bytes()).unwrap();
            w.write_all(&[1, 2]).unwrap();
        }
        drop(a);
        assert!(read_frame(&b).is_err());
    }

    #[test]
    fn establish_inproc_is_local() {
        let fabric = InProcess.establish(4).unwrap();
        assert!(matches!(fabric.0, FabricInner::Local));
    }
}
