//! Named counters and histograms: the run-time metrics registry.
//!
//! One registry lives on every rank's [`crate::Comm`]; subsystems record
//! into it through well-known names (the consts in [`names`]) instead of
//! keeping private tallies. After a run, per-rank registries come back in
//! [`crate::RankOutput::metrics`] and can be aggregated with
//! [`MetricsRegistry::aggregate`]. The Algorithm 2 balancer reads its
//! service-load input `I(p)` from [`names::CONN_SERVICED`] — the registry is
//! the single source of truth for measured load.

use crate::stats::Phase;
use crate::wire::{intern, Wire, WireError, WireReader};
use std::collections::BTreeMap;

/// Well-known metric names. Counter names are dotted paths; per-phase
/// message counters are resolved with [`msgs_in`] / [`bytes_in`].
pub mod names {
    /// Search-request points serviced by this rank (the paper's `I(p)`).
    pub const CONN_SERVICED: &str = "conn.serviced";
    /// Requests answered from a warm nth-level-restart hint.
    pub const CONN_CACHE_HIT: &str = "conn.cache.hit";
    /// Warm hints that missed and fell back to the hierarchy.
    pub const CONN_CACHE_MISS: &str = "conn.cache.miss";
    /// Requests forwarded to another candidate rank after a miss.
    pub const CONN_FORWARDS: &str = "conn.forwards";
    /// Stencil-walk steps performed while servicing donor searches.
    pub const CONN_WALK_STEPS: &str = "conn.walk_steps";
    /// IGBPs left unresolved (orphans) summed over steps.
    pub const CONN_ORPHANS: &str = "conn.orphans";
    /// Donor-search protocol rounds summed over steps.
    pub const CONN_ROUNDS: &str = "conn.rounds";
    /// Inverse maps rebuilt from scratch (full lattice builds).
    pub const CONN_INVMAP_BUILDS: &str = "conn.invmap.build";
    /// Inverse maps advanced incrementally under small rigid motion
    /// (pose composition instead of a full rebuild).
    pub const CONN_INVMAP_INCR: &str = "conn.invmap.incr";
    /// Repartitions executed by the dynamic balancer.
    pub const LB_REPARTITIONS: &str = "lb.repartitions";
    /// Collectives entered by this rank.
    pub const COMM_COLLECTIVES: &str = "comm.collectives";
    /// Histogram: measured `f(p) = I(p)/mean` at each balance check.
    pub const LB_F_RATIO: &str = "lb.f_ratio";
    /// Histogram: receive stall (virtual seconds the clock jumped forward
    /// waiting for a message to arrive) — pipeline stall time.
    pub const COMM_RECV_STALL: &str = "comm.recv.stall_s";

    /// Messages sent while the given phase was active.
    pub fn msgs_in(phase: super::Phase) -> &'static str {
        match phase {
            super::Phase::Flow => "comm.msgs.flow",
            super::Phase::Connectivity => "comm.msgs.connectivity",
            super::Phase::Motion => "comm.msgs.motion",
            super::Phase::Balance => "comm.msgs.balance",
            super::Phase::Other => "comm.msgs.other",
        }
    }

    /// Payload bytes sent while the given phase was active.
    pub fn bytes_in(phase: super::Phase) -> &'static str {
        match phase {
            super::Phase::Flow => "comm.bytes.flow",
            super::Phase::Connectivity => "comm.bytes.connectivity",
            super::Phase::Motion => "comm.bytes.motion",
            super::Phase::Balance => "comm.bytes.balance",
            super::Phase::Other => "comm.bytes.other",
        }
    }
}

/// Buckets per decade of the fixed log-spaced quantile grid.
const BUCKETS_PER_DECADE: usize = 4;
/// Smallest finite bucket boundary is 10^MIN_EXP; everything at or below it
/// lands in the underflow bucket.
const MIN_EXP: i32 = -12;
/// Decades covered by the finite buckets: [1e-12, 1e9).
const DECADES: usize = 21;
/// Finite buckets plus one underflow (index 0) and one overflow (last).
const NUM_BUCKETS: usize = DECADES * BUCKETS_PER_DECADE + 2;

/// Streaming histogram summary: count / sum / min / max plus fixed
/// log-spaced bucket counts for deterministic quantiles (p50/p95/p99).
///
/// The bucket grid is *fixed* (4 buckets per decade over [1e-12, 1e9), with
/// underflow/overflow buckets), so merging is pure integer addition: the
/// aggregate — and every quantile read from it — is byte-identical no
/// matter the order ranks are folded in. min/max/mean alone hide exactly
/// the f(p) tail the dynamic balancer triggers on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    counts: [u32; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            counts: [0; NUM_BUCKETS],
        }
    }
}

/// Bucket index of an observation on the fixed grid.
fn bucket_of(v: f64) -> usize {
    let lo = 10.0f64.powi(MIN_EXP);
    // NaN and anything <= lo (including <= 0) land in the underflow bucket.
    if v.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    let hi_exp = MIN_EXP + DECADES as i32;
    if v >= 10.0f64.powi(hi_exp) {
        return NUM_BUCKETS - 1; // overflow
    }
    let idx = ((v.log10() - MIN_EXP as f64) * BUCKETS_PER_DECADE as f64).floor() as isize;
    (idx.clamp(0, (DECADES * BUCKETS_PER_DECADE) as isize - 1) as usize) + 1
}

impl Histogram {
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.counts[bucket_of(v)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Deterministic quantile estimate (`q` in [0, 1]) off the fixed bucket
    /// grid: the geometric midpoint of the bucket holding the q-th
    /// observation, clamped into `[min, max]`. Resolution is a quarter
    /// decade — coarse but byte-stable across rank orderings and merges.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c as u64;
            if cum >= target {
                if i == 0 {
                    return self.min;
                }
                if i == NUM_BUCKETS - 1 {
                    return self.max;
                }
                let mid_exp = MIN_EXP as f64 + ((i - 1) as f64 + 0.5) / BUCKETS_PER_DECADE as f64;
                return 10.0f64.powf(mid_exp).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Dense bucket-count encoding: count/sum/min/max then the fixed grid.
    /// `counts` is private, so the impl lives here rather than in `wire`.
    fn wire_encode(&self, buf: &mut Vec<u8>) {
        self.count.encode(buf);
        self.sum.encode(buf);
        self.min.encode(buf);
        self.max.encode(buf);
        for c in &self.counts {
            c.encode(buf);
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut h = Histogram {
            count: u64::decode(r)?,
            sum: f64::decode(r)?,
            min: f64::decode(r)?,
            max: f64::decode(r)?,
            counts: [0; NUM_BUCKETS],
        };
        for c in h.counts.iter_mut() {
            *c = u32::decode(r)?;
        }
        Ok(h)
    }

    fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// A set of named counters and histograms. Iteration order is the name
/// order (`BTreeMap`), so reports are deterministic.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `v`.
    #[inline]
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().record(v);
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self` (counters add, histograms merge).
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// Aggregate per-rank registries into one cross-rank view.
    pub fn aggregate(regs: &[MetricsRegistry]) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for r in regs {
            out.merge_from(r);
        }
        out
    }

    /// Warm-restart hit rate: hits / (hits + misses), or `None` when the
    /// cache was never consulted.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let h = self.counter(names::CONN_CACHE_HIT);
        let m = self.counter(names::CONN_CACHE_MISS);
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }
}

impl Wire for Histogram {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.wire_encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Histogram::wire_decode(r)
    }
}

// Registries return from child processes inside `RankOutput`; metric names
// are a fixed vocabulary of `&'static str`, re-interned on decode.
impl Wire for MetricsRegistry {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.counters.len() as u64).to_le_bytes());
        for (&k, &v) in &self.counters {
            k.to_string().encode(buf);
            v.encode(buf);
        }
        buf.extend_from_slice(&(self.histograms.len() as u64).to_le_bytes());
        for (&k, h) in &self.histograms {
            k.to_string().encode(buf);
            h.encode(buf);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut m = MetricsRegistry::new();
        let nc = r.len_prefix()?;
        for _ in 0..nc {
            let k = intern(&String::decode(r)?);
            let v = u64::decode(r)?;
            m.counters.insert(k, v);
        }
        let nh = r.len_prefix()?;
        for _ in 0..nh {
            let k = intern(&String::decode(r)?);
            let h = Histogram::decode(r)?;
            m.histograms.insert(k, h);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_wire_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.add(names::CONN_SERVICED, 42);
        m.add(names::CONN_ORPHANS, 7);
        m.observe(names::LB_F_RATIO, 0.5);
        m.observe(names::LB_F_RATIO, 123.456);
        m.observe(names::COMM_RECV_STALL, 1.0e-9);
        let back = MetricsRegistry::from_wire_bytes(&m.to_wire_bytes()).unwrap();
        assert_eq!(back.counter(names::CONN_SERVICED), 42);
        assert_eq!(back.counter(names::CONN_ORPHANS), 7);
        let (ha, hb) =
            (m.histogram(names::LB_F_RATIO).unwrap(), back.histogram(names::LB_F_RATIO).unwrap());
        assert_eq!(ha, hb);
        assert_eq!(
            back.histogram(names::COMM_RECV_STALL).unwrap().sum.to_bits(),
            1.0e-9f64.to_bits()
        );
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc(names::CONN_SERVICED);
        m.add(names::CONN_SERVICED, 41);
        assert_eq!(m.counter(names::CONN_SERVICED), 42);
        assert_eq!(m.counter("never.touched"), 0);
    }

    #[test]
    fn histogram_summary() {
        let mut m = MetricsRegistry::new();
        m.observe(names::COMM_RECV_STALL, 1.0);
        m.observe(names::COMM_RECV_STALL, 3.0);
        let h = m.histogram(names::COMM_RECV_STALL).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn aggregation_sums_ranks() {
        let mut a = MetricsRegistry::new();
        a.add(names::CONN_SERVICED, 10);
        a.observe(names::LB_F_RATIO, 0.5);
        let mut b = MetricsRegistry::new();
        b.add(names::CONN_SERVICED, 30);
        b.add(names::CONN_ORPHANS, 2);
        b.observe(names::LB_F_RATIO, 1.5);
        let agg = MetricsRegistry::aggregate(&[a, b]);
        assert_eq!(agg.counter(names::CONN_SERVICED), 40);
        assert_eq!(agg.counter(names::CONN_ORPHANS), 2);
        let h = agg.histogram(names::LB_F_RATIO).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1.5);
    }

    #[test]
    fn hit_rate() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.cache_hit_rate(), None);
        m.add(names::CONN_CACHE_HIT, 3);
        m.add(names::CONN_CACHE_MISS, 1);
        assert_eq!(m.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn quantiles_track_the_tail() {
        let mut h = Histogram::default();
        // 90 small observations and a 10% tail of huge ones: the p50 stays
        // small, p95/p99 see the tail that the mean alone averages away.
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert!(h.p50() >= 0.5 && h.p50() <= 2.0, "p50 = {}", h.p50());
        assert!(h.p95() >= 500.0, "p95 = {}", h.p95());
        assert!(h.p99() >= 500.0, "p99 = {}", h.p99());
        assert_eq!(h.quantile(1.0), h.quantile(0.999));
        // Quantiles never escape the observed range.
        assert!(h.quantile(0.0) >= h.min && h.quantile(1.0) <= h.max);
    }

    #[test]
    fn quantiles_handle_edge_values() {
        let mut h = Histogram::default();
        assert_eq!(h.p50(), 0.0); // empty
        h.record(0.0); // underflow bucket
        h.record(1.0e20); // overflow bucket
        assert_eq!(h.quantile(0.25), 0.0);
        assert_eq!(h.quantile(1.0), 1.0e20);
    }

    #[test]
    fn aggregation_is_order_independent() {
        let mk = |vals: &[f64]| {
            let mut m = MetricsRegistry::new();
            for &v in vals {
                m.observe(names::LB_F_RATIO, v);
            }
            m
        };
        let a = mk(&[0.1, 0.5, 2.0]);
        let b = mk(&[1.5, 7.0]);
        let c = mk(&[0.9]);
        let fwd = MetricsRegistry::aggregate(&[a.clone(), b.clone(), c.clone()]);
        let rev = MetricsRegistry::aggregate(&[c, b, a]);
        let hf = fwd.histogram(names::LB_F_RATIO).unwrap();
        let hr = rev.histogram(names::LB_F_RATIO).unwrap();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(hf.quantile(q).to_bits(), hr.quantile(q).to_bits());
        }
        assert_eq!(hf.min.to_bits(), hr.min.to_bits());
        assert_eq!(hf.max.to_bits(), hr.max.to_bits());
        assert_eq!(hf.count, hr.count);
    }

    #[test]
    fn per_phase_names_are_distinct() {
        use crate::stats::Phase::*;
        let all = [Flow, Connectivity, Motion, Balance, Other];
        let mut seen = std::collections::HashSet::new();
        for p in all {
            assert!(seen.insert(names::msgs_in(p)));
            assert!(seen.insert(names::bytes_in(p)));
        }
    }
}
