//! Named counters and histograms: the run-time metrics registry.
//!
//! One registry lives on every rank's [`crate::Comm`]; subsystems record
//! into it through well-known names (the consts in [`names`]) instead of
//! keeping private tallies. After a run, per-rank registries come back in
//! [`crate::RankOutput::metrics`] and can be aggregated with
//! [`MetricsRegistry::aggregate`]. The Algorithm 2 balancer reads its
//! service-load input `I(p)` from [`names::CONN_SERVICED`] — the registry is
//! the single source of truth for measured load.

use crate::stats::Phase;
use std::collections::BTreeMap;

/// Well-known metric names. Counter names are dotted paths; per-phase
/// message counters are resolved with [`msgs_in`] / [`bytes_in`].
pub mod names {
    /// Search-request points serviced by this rank (the paper's `I(p)`).
    pub const CONN_SERVICED: &str = "conn.serviced";
    /// Requests answered from a warm nth-level-restart hint.
    pub const CONN_CACHE_HIT: &str = "conn.cache.hit";
    /// Warm hints that missed and fell back to the hierarchy.
    pub const CONN_CACHE_MISS: &str = "conn.cache.miss";
    /// Requests forwarded to another candidate rank after a miss.
    pub const CONN_FORWARDS: &str = "conn.forwards";
    /// IGBPs left unresolved (orphans) summed over steps.
    pub const CONN_ORPHANS: &str = "conn.orphans";
    /// Donor-search protocol rounds summed over steps.
    pub const CONN_ROUNDS: &str = "conn.rounds";
    /// Repartitions executed by the dynamic balancer.
    pub const LB_REPARTITIONS: &str = "lb.repartitions";
    /// Collectives entered by this rank.
    pub const COMM_COLLECTIVES: &str = "comm.collectives";
    /// Histogram: measured `f(p) = I(p)/mean` at each balance check.
    pub const LB_F_RATIO: &str = "lb.f_ratio";
    /// Histogram: receive stall (virtual seconds the clock jumped forward
    /// waiting for a message to arrive) — pipeline stall time.
    pub const COMM_RECV_STALL: &str = "comm.recv.stall_s";

    /// Messages sent while the given phase was active.
    pub fn msgs_in(phase: super::Phase) -> &'static str {
        match phase {
            super::Phase::Flow => "comm.msgs.flow",
            super::Phase::Connectivity => "comm.msgs.connectivity",
            super::Phase::Motion => "comm.msgs.motion",
            super::Phase::Balance => "comm.msgs.balance",
            super::Phase::Other => "comm.msgs.other",
        }
    }

    /// Payload bytes sent while the given phase was active.
    pub fn bytes_in(phase: super::Phase) -> &'static str {
        match phase {
            super::Phase::Flow => "comm.bytes.flow",
            super::Phase::Connectivity => "comm.bytes.connectivity",
            super::Phase::Motion => "comm.bytes.motion",
            super::Phase::Balance => "comm.bytes.balance",
            super::Phase::Other => "comm.bytes.other",
        }
    }
}

/// Streaming histogram summary: count / sum / min / max (enough for the
/// stall-time and imbalance distributions the tables report).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl Histogram {
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A set of named counters and histograms. Iteration order is the name
/// order (`BTreeMap`), so reports are deterministic.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `v`.
    #[inline]
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().record(v);
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self` (counters add, histograms merge).
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// Aggregate per-rank registries into one cross-rank view.
    pub fn aggregate(regs: &[MetricsRegistry]) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for r in regs {
            out.merge_from(r);
        }
        out
    }

    /// Warm-restart hit rate: hits / (hits + misses), or `None` when the
    /// cache was never consulted.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let h = self.counter(names::CONN_CACHE_HIT);
        let m = self.counter(names::CONN_CACHE_MISS);
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc(names::CONN_SERVICED);
        m.add(names::CONN_SERVICED, 41);
        assert_eq!(m.counter(names::CONN_SERVICED), 42);
        assert_eq!(m.counter("never.touched"), 0);
    }

    #[test]
    fn histogram_summary() {
        let mut m = MetricsRegistry::new();
        m.observe(names::COMM_RECV_STALL, 1.0);
        m.observe(names::COMM_RECV_STALL, 3.0);
        let h = m.histogram(names::COMM_RECV_STALL).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn aggregation_sums_ranks() {
        let mut a = MetricsRegistry::new();
        a.add(names::CONN_SERVICED, 10);
        a.observe(names::LB_F_RATIO, 0.5);
        let mut b = MetricsRegistry::new();
        b.add(names::CONN_SERVICED, 30);
        b.add(names::CONN_ORPHANS, 2);
        b.observe(names::LB_F_RATIO, 1.5);
        let agg = MetricsRegistry::aggregate(&[a, b]);
        assert_eq!(agg.counter(names::CONN_SERVICED), 40);
        assert_eq!(agg.counter(names::CONN_ORPHANS), 2);
        let h = agg.histogram(names::LB_F_RATIO).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1.5);
    }

    #[test]
    fn hit_rate() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.cache_hit_rate(), None);
        m.add(names::CONN_CACHE_HIT, 3);
        m.add(names::CONN_CACHE_MISS, 1);
        assert_eq!(m.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn per_phase_names_are_distinct() {
        use crate::stats::Phase::*;
        let all = [Flow, Connectivity, Motion, Balance, Other];
        let mut seen = std::collections::HashSet::new();
        for p in all {
            assert!(seen.insert(names::msgs_in(p)));
            assert!(seen.insert(names::bytes_in(p)));
        }
    }
}
