//! Machine models: deterministic virtual-time cost models for the machines
//! the paper measured on.
//!
//! The paper's results are *cost-structure* results (speedups, Mflops/node,
//! % time in the connectivity solution). To reproduce them on modern
//! hardware, every compute kernel reports the floating-point work it did and
//! every message reports its size; a machine model converts work and
//! communication into seconds of virtual time the way the 1997 machines did:
//!
//! * per-node sustained flop rate, with a work-class efficiency (structured
//!   sweeps stream well; donor searches chase pointers and sustain less) and
//!   a cache term (the paper attributes its super-scalar speedups to loop
//!   working sets dropping into cache as subdomains shrink),
//! * interconnect latency and bandwidth (SP2: 40 MB/s switch; SP: 110 MB/s),
//! * log₂(P) barrier/collective scaling.

/// Classification of compute work for the sustained-rate model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkClass {
    /// Structured-grid sweeps (flow solver): long unit-stride loops.
    Flow = 0,
    /// Donor searches and hole cutting: short, branchy, indirect.
    Search = 1,
    /// Everything else (motion, bookkeeping).
    Other = 2,
}

/// Simple cache-performance model: the effective rate is multiplied by a
/// factor that rises as the per-rank working set falls toward the cache size.
///
/// `factor(ws) = low + (high - low) / (1 + (ws / cache_bytes)^2)`
///
/// so `ws << cache` gives `high` (e.g. 1.15: the paper's super-scalar
/// speedups), `ws == cache` gives the midpoint, and `ws >> cache` tends to
/// `low` (memory-bound).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CacheModel {
    pub cache_bytes: f64,
    pub low: f64,
    pub high: f64,
}

impl CacheModel {
    pub fn factor(&self, working_set_bytes: f64) -> f64 {
        if working_set_bytes <= 0.0 {
            return self.high;
        }
        let r = working_set_bytes / self.cache_bytes;
        self.low + (self.high - self.low) / (1.0 + r * r)
    }

    /// A model with no cache effect (factor 1 everywhere).
    pub const FLAT: CacheModel = CacheModel { cache_bytes: 1.0, low: 1.0, high: 1.0 };
}

/// A deterministic virtual-time cost model of one parallel machine.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineModel {
    pub name: &'static str,
    /// Sustained per-node flop rate for ideal [`WorkClass::Flow`] work, flops/s.
    pub flops_per_sec: f64,
    /// Efficiency multipliers per work class (`Flow`, `Search`, `Other`).
    pub class_efficiency: [f64; 3],
    pub cache: CacheModel,
    /// One-way message latency, seconds.
    pub latency: f64,
    /// Point-to-point bandwidth, bytes/second.
    pub bandwidth: f64,
    /// CPU overhead charged to the sender per message, seconds.
    pub send_overhead: f64,
}

impl MachineModel {
    /// Effective flop rate for `class` work with the given per-rank working
    /// set (bytes); `working_set = 0` disables the cache term.
    pub fn rate(&self, class: WorkClass, working_set_bytes: f64) -> f64 {
        self.flops_per_sec
            * self.class_efficiency[class as usize]
            * self.cache.factor(working_set_bytes)
    }

    /// Seconds to perform `flops` of `class` work.
    pub fn compute_time(&self, flops: f64, class: WorkClass, working_set_bytes: f64) -> f64 {
        flops / self.rate(class, working_set_bytes)
    }

    /// Transit time of a message (excluding sender CPU overhead).
    pub fn transit_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Cost of a barrier / small collective among `nranks` ranks.
    pub fn collective_time(&self, nranks: usize, bytes: usize) -> f64 {
        let stages = (nranks.max(1) as f64).log2().ceil().max(1.0);
        stages * (self.latency + bytes as f64 / self.bandwidth)
    }

    /// IBM SP2 at NASA Ames: 66.7 MHz POWER2 nodes (peak 266 Mflops,
    /// sustained ~32 on structured CFD), 40 MB/s switch.
    pub fn ibm_sp2() -> Self {
        MachineModel {
            name: "IBM-SP2",
            flops_per_sec: 32.0e6,
            class_efficiency: [1.0, 0.5, 0.6],
            cache: CacheModel { cache_bytes: 256.0 * 1024.0, low: 0.72, high: 1.18 },
            latency: 40.0e-6,
            bandwidth: 40.0e6,
            send_overhead: 8.0e-6,
        }
    }

    /// IBM SP at CEWES: 135 MHz P2SC nodes, 110 MB/s switch. The paper
    /// measures it at roughly 1.35–1.9× the SP2 per node.
    pub fn ibm_sp() -> Self {
        MachineModel {
            name: "IBM-SP",
            flops_per_sec: 50.0e6,
            class_efficiency: [1.0, 0.5, 0.6],
            cache: CacheModel { cache_bytes: 256.0 * 1024.0, low: 0.70, high: 1.22 },
            latency: 30.0e-6,
            bandwidth: 110.0e6,
            send_overhead: 6.0e-6,
        }
    }

    /// Single-processor Cray Y-MP/864 reference for Table 6 ("YMP units").
    /// Sustained rate calibrated so one Y-MP processor ≈ 1.3–1.9× one SP2
    /// node on this workload, as the paper's per-node columns imply.
    pub fn cray_ymp() -> Self {
        MachineModel {
            name: "Cray-YMP",
            flops_per_sec: 30.0e6, // sustained (vector) on this workload
            class_efficiency: [1.0, 0.55, 0.8],
            cache: CacheModel::FLAT, // vector machine: flat memory system
            latency: 1.0e-6,
            bandwidth: 1.0e9,
            send_overhead: 0.0,
        }
    }

    /// A generic modern multicore-ish model for examples and quickstarts.
    pub fn modern() -> Self {
        MachineModel {
            name: "Modern",
            flops_per_sec: 2.0e9,
            class_efficiency: [1.0, 0.5, 0.7],
            cache: CacheModel { cache_bytes: 32.0 * 1024.0 * 1024.0, low: 0.8, high: 1.1 },
            latency: 2.0e-6,
            bandwidth: 10.0e9,
            send_overhead: 0.2e-6,
        }
    }

    /// Variant with the cache term disabled (for the A4 ablation).
    pub fn without_cache_model(mut self) -> Self {
        self.cache = CacheModel::FLAT;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_factor_limits() {
        let c = CacheModel { cache_bytes: 1e6, low: 0.7, high: 1.2 };
        assert!((c.factor(0.0) - 1.2).abs() < 1e-12);
        assert!((c.factor(1.0) - 1.2).abs() < 1e-3);
        assert!((c.factor(1e12) - 0.7).abs() < 1e-3);
        let mid = c.factor(1e6);
        assert!((mid - 0.95).abs() < 1e-12, "midpoint {mid}");
        // Monotone decreasing.
        assert!(c.factor(1e5) > c.factor(1e6));
        assert!(c.factor(1e6) > c.factor(1e7));
    }

    #[test]
    fn sp_is_faster_than_sp2() {
        let sp2 = MachineModel::ibm_sp2();
        let sp = MachineModel::ibm_sp();
        let ws = 4.0 * 1024.0 * 1024.0;
        assert!(sp.rate(WorkClass::Flow, ws) > 1.3 * sp2.rate(WorkClass::Flow, ws));
        assert!(sp.transit_time(1 << 20) < sp2.transit_time(1 << 20));
    }

    #[test]
    fn search_work_is_less_efficient() {
        let m = MachineModel::ibm_sp2();
        assert!(m.rate(WorkClass::Search, 0.0) <= 0.5 * m.rate(WorkClass::Flow, 0.0));
    }

    #[test]
    fn transit_time_components() {
        let m = MachineModel::ibm_sp2();
        let t0 = m.transit_time(0);
        assert!((t0 - 40.0e-6).abs() < 1e-12);
        let t1 = m.transit_time(40_000_000);
        assert!((t1 - (40.0e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn collective_scales_logarithmically() {
        let m = MachineModel::ibm_sp2();
        let t2 = m.collective_time(2, 8);
        let t64 = m.collective_time(64, 8);
        assert!((t64 / t2 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn without_cache_model_is_flat() {
        let m = MachineModel::ibm_sp2().without_cache_model();
        assert_eq!(m.rate(WorkClass::Flow, 1.0), m.rate(WorkClass::Flow, 1e12));
    }

    #[test]
    fn ymp_node_vs_sp2_node_band() {
        // Per-node columns of Table 6 put an SP2 node at 0.52-0.71 YMP units.
        let ymp = MachineModel::cray_ymp().rate(WorkClass::Flow, 0.0);
        let sp2 = MachineModel::ibm_sp2().rate(WorkClass::Flow, 2e6);
        let ratio = sp2 / ymp;
        assert!((0.4..0.9).contains(&ratio), "SP2/YMP per-node ratio {ratio}");
    }
}
