//! Counting global allocator with per-rank, per-phase attribution.
//!
//! Every crate in the workspace links `overset-comm`, so the
//! [`#[global_allocator]`](CountingAlloc) registered here observes every heap
//! allocation in every binary and test. Attribution works through a
//! thread-local [`Ctx`] holding a raw pointer to the current rank's
//! [`RankAllocCounters`] plus the current [`Phase`](crate::stats::Phase):
//!
//! - `runtime::run_ranks` installs the context at rank start and clears it
//!   when the rank body returns (or unwinds), so allocator bookkeeping never
//!   outlives the counters it points at.
//! - `Comm::switch_phase` keeps the context's phase in sync with the RAII
//!   `PhaseGuard`s.
//! - the M:N scheduler saves/restores the full context across every coroutine
//!   switch (`sched::run_coro`), so a rank resumed on the same worker thread
//!   after another rank ran there still charges its own counters.
//! - the process transport runs `run_ranks` inside each child, so child-side
//!   counters are attributed identically and travel back to the parent inside
//!   `RankOutput` on `Done`.
//!
//! ## Determinism contract
//!
//! Per-phase **allocation counts and byte totals are order-invariant sums**:
//! for deterministic rank code they are bit-identical run to run, which makes
//! them a gateable host-cost proxy (`repro compare` checks them exactly).
//! Two caveats keep that true:
//!
//! - Runtime-internal allocations whose count depends on *host* timing
//!   (mailbox queue growth, rendezvous buffers, out-of-order pending lists)
//!   are excluded via [`suspend`] guards around the comm runtime's internals.
//!   Only allocations made by rank code (and deterministic observability
//!   paths) are attributed.
//! - **Peak bytes depend on allocation order**, which legitimately varies
//!   with thread interleaving. Peaks are surfaced as advisory data in the
//!   report's `host` section and are never gated.
//!
//! Counts may legitimately differ between transports or scheduler modes
//! (different code paths run); only same-configuration run-to-run equality is
//! guaranteed.

use crate::stats::{Phase, NUM_PHASES};
use crate::wire::{Wire, WireError, WireReader};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-rank allocation counters. One instance per rank per run, shared
/// between the rank's `Comm` and the thread-local allocator context.
///
/// All counters use relaxed atomics: a rank executes on exactly one OS
/// thread at a time (1:1 threads, M:N pinned coroutines, or a child
/// process), so there is no cross-thread contention on a single instance —
/// atomics only make the unsynchronized read from `Comm::finish` defined.
#[derive(Debug)]
pub struct RankAllocCounters {
    allocs: [AtomicU64; NUM_PHASES],
    bytes: [AtomicU64; NUM_PHASES],
    frees: [AtomicU64; NUM_PHASES],
    freed_bytes: [AtomicU64; NUM_PHASES],
    cur_bytes: AtomicI64,
    peak_bytes: AtomicI64,
}

impl Default for RankAllocCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl RankAllocCounters {
    pub const fn new() -> Self {
        RankAllocCounters {
            allocs: [const { AtomicU64::new(0) }; NUM_PHASES],
            bytes: [const { AtomicU64::new(0) }; NUM_PHASES],
            frees: [const { AtomicU64::new(0) }; NUM_PHASES],
            freed_bytes: [const { AtomicU64::new(0) }; NUM_PHASES],
            cur_bytes: AtomicI64::new(0),
            peak_bytes: AtomicI64::new(0),
        }
    }

    /// Deterministic (gateable) part of the counters: per-phase allocation
    /// counts and byte totals.
    pub fn snapshot(&self) -> AllocSnapshot {
        let mut s = AllocSnapshot::default();
        for p in 0..NUM_PHASES {
            s.allocs[p] = self.allocs[p].load(Ordering::Relaxed);
            s.bytes[p] = self.bytes[p].load(Ordering::Relaxed);
        }
        s
    }

    /// Full totals including free counts and the (order-dependent, advisory)
    /// peak of net attributed bytes.
    pub fn totals(&self) -> AllocTotals {
        let mut t = AllocTotals::default();
        for p in 0..NUM_PHASES {
            t.allocs[p] = self.allocs[p].load(Ordering::Relaxed);
            t.bytes[p] = self.bytes[p].load(Ordering::Relaxed);
            t.frees[p] = self.frees[p].load(Ordering::Relaxed);
            t.freed_bytes[p] = self.freed_bytes[p].load(Ordering::Relaxed);
        }
        t.peak_bytes = self.peak_bytes.load(Ordering::Relaxed).max(0) as u64;
        t
    }
}

/// Deterministic per-phase counters used for step differencing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    pub allocs: [u64; NUM_PHASES],
    pub bytes: [u64; NUM_PHASES],
}

/// End-of-run allocation totals for one rank, carried in `RankOutput`.
///
/// `allocs`/`bytes`/`frees`/`freed_bytes` are deterministic for
/// deterministic rank code; `peak_bytes` is order-dependent and advisory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocTotals {
    pub allocs: [u64; NUM_PHASES],
    pub bytes: [u64; NUM_PHASES],
    pub frees: [u64; NUM_PHASES],
    pub freed_bytes: [u64; NUM_PHASES],
    pub peak_bytes: u64,
}

impl AllocTotals {
    pub fn total_allocs(&self) -> u64 {
        self.allocs.iter().sum()
    }
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

impl Wire for AllocTotals {
    fn encode(&self, out: &mut Vec<u8>) {
        self.allocs.encode(out);
        self.bytes.encode(out);
        self.frees.encode(out);
        self.freed_bytes.encode(out);
        self.peak_bytes.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AllocTotals {
            allocs: Wire::decode(r)?,
            bytes: Wire::decode(r)?,
            frees: Wire::decode(r)?,
            freed_bytes: Wire::decode(r)?,
            peak_bytes: Wire::decode(r)?,
        })
    }
}

/// Per-step allocation deltas for one rank (flight-recorder ring entry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocRecord {
    /// 0-based step index, same numbering as `StepRecord::step`.
    pub step: u64,
    /// Allocations performed during this step, per phase.
    pub allocs: [u64; NUM_PHASES],
    /// Bytes requested during this step, per phase.
    pub bytes: [u64; NUM_PHASES],
}

impl Wire for AllocRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.step.encode(out);
        self.allocs.encode(out);
        self.bytes.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AllocRecord {
            step: Wire::decode(r)?,
            allocs: Wire::decode(r)?,
            bytes: Wire::decode(r)?,
        })
    }
}

/// Thread-local attribution context. `Copy` + const-init `Cell` so the
/// allocator's fast path never allocates, never drops, and never trips TLS
/// destructor recursion.
#[derive(Clone, Copy)]
pub(crate) struct Ctx {
    /// Target counters; null = unattributed (allocation not counted).
    counters: *const RankAllocCounters,
    /// Current phase index (< NUM_PHASES).
    phase: u8,
    /// Suspension depth; > 0 means runtime-internal allocations are skipped.
    suspend: u32,
}

impl Ctx {
    const EMPTY: Ctx = Ctx { counters: ptr::null(), phase: Phase::Other as u8, suspend: 0 };
}

thread_local! {
    static CTX: Cell<Ctx> = const { Cell::new(Ctx::EMPTY) };
}

/// Opaque saved context, swapped across M:N coroutine switches.
#[derive(Clone, Copy)]
pub(crate) struct SavedCtx(Ctx);

impl SavedCtx {
    pub(crate) const EMPTY: SavedCtx = SavedCtx(Ctx::EMPTY);
}

/// Install attribution for the current thread. The caller must keep
/// `counters` alive (and call [`clear`]) before dropping the `Arc`.
pub(crate) fn install(counters: &Arc<RankAllocCounters>, phase: Phase) {
    let _ = CTX.try_with(|c| {
        c.set(Ctx { counters: Arc::as_ptr(counters), phase: phase as u8, suspend: 0 })
    });
}

/// Stop attributing allocations on the current thread.
pub(crate) fn clear() {
    let _ = CTX.try_with(|c| c.set(Ctx::EMPTY));
}

/// Keep the context's phase in sync with `Comm::switch_phase`.
pub(crate) fn set_phase(phase: Phase) {
    let _ = CTX.try_with(|c| {
        let mut ctx = c.get();
        ctx.phase = phase as u8;
        c.set(ctx);
    });
}

/// Swap in a previously saved context, returning the current one.
/// Used by the M:N scheduler around every coroutine switch.
pub(crate) fn swap_ctx(new: SavedCtx) -> SavedCtx {
    CTX.try_with(|c| SavedCtx(c.replace(new.0))).unwrap_or(SavedCtx::EMPTY)
}

/// RAII guard suppressing attribution for runtime-internal allocations whose
/// count depends on host timing (mailbox growth, rendezvous buffers, ...).
/// Nests; must stay on the thread that created it (it is `!Send` via the
/// raw-pointer-free but thread-local semantics — not enforced by the type
/// system, callers are module-internal).
pub(crate) struct SuspendGuard(());

pub(crate) fn suspend() -> SuspendGuard {
    let _ = CTX.try_with(|c| {
        let mut ctx = c.get();
        ctx.suspend += 1;
        c.set(ctx);
    });
    SuspendGuard(())
}

impl Drop for SuspendGuard {
    fn drop(&mut self) {
        let _ = CTX.try_with(|c| {
            let mut ctx = c.get();
            ctx.suspend = ctx.suspend.saturating_sub(1);
            c.set(ctx);
        });
    }
}

/// Map a raw context phase byte onto a counter slot. In-range values index
/// their own bucket; anything out of range is an *unknown* phase and is
/// attributed to `Phase::Other` explicitly — not silently folded into
/// whichever real phase happens to sit last in the enum.
#[inline]
pub(crate) fn phase_slot(raw: u8) -> usize {
    let p = raw as usize;
    if p < NUM_PHASES {
        p
    } else {
        Phase::Other as usize
    }
}

#[inline]
fn record_alloc(size: usize) {
    let _ = CTX.try_with(|c| {
        let ctx = c.get();
        if ctx.counters.is_null() || ctx.suspend > 0 {
            return;
        }
        // SAFETY: non-null counters pointers are installed from a live Arc
        // and cleared (install/clear/swap_ctx) before that Arc can be
        // dropped; see runtime::run_ranks.
        let rc = unsafe { &*ctx.counters };
        let p = phase_slot(ctx.phase);
        rc.allocs[p].fetch_add(1, Ordering::Relaxed);
        rc.bytes[p].fetch_add(size as u64, Ordering::Relaxed);
        let cur = rc.cur_bytes.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        rc.peak_bytes.fetch_max(cur, Ordering::Relaxed);
    });
}

#[inline]
fn record_free(size: usize) {
    let _ = CTX.try_with(|c| {
        let ctx = c.get();
        if ctx.counters.is_null() || ctx.suspend > 0 {
            return;
        }
        // SAFETY: as in record_alloc.
        let rc = unsafe { &*ctx.counters };
        let p = phase_slot(ctx.phase);
        rc.frees[p].fetch_add(1, Ordering::Relaxed);
        rc.freed_bytes[p].fetch_add(size as u64, Ordering::Relaxed);
        rc.cur_bytes.fetch_sub(size as i64, Ordering::Relaxed);
    });
}

/// System-allocator wrapper counting every heap operation against the
/// current thread's attribution context.
pub struct CountingAlloc;

// SAFETY: defers all allocation to `System`; bookkeeping never allocates
// (const-init Cell thread-locals, atomic adds only).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            record_free(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// The workspace-wide counting allocator. Living in `overset-comm` puts it in
/// every downstream binary and test without further opt-in.
#[global_allocator]
static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unattributed_allocations_are_not_counted() {
        clear();
        let c = Arc::new(RankAllocCounters::new());
        let before = c.snapshot();
        let v = vec![0u8; 4096];
        std::hint::black_box(&v);
        drop(v);
        assert_eq!(c.snapshot(), before);
    }

    #[test]
    fn attribution_lands_on_current_phase() {
        let c = Arc::new(RankAllocCounters::new());
        install(&c, Phase::Connectivity);
        let v = vec![0u8; 1024];
        std::hint::black_box(&v);
        set_phase(Phase::Flow);
        let w = vec![0u8; 2048];
        std::hint::black_box(&w);
        clear();
        drop(v);
        drop(w);
        let s = c.snapshot();
        let conn = Phase::Connectivity as usize;
        let flow = Phase::Flow as usize;
        assert!(s.allocs[conn] >= 1, "connectivity alloc missing: {s:?}");
        assert!(s.bytes[conn] >= 1024);
        assert!(s.allocs[flow] >= 1, "flow alloc missing: {s:?}");
        assert!(s.bytes[flow] >= 2048);
        let t = c.totals();
        assert!(t.peak_bytes >= 3072, "peak too small: {}", t.peak_bytes);
        // Frees happened after clear(): not attributed.
        assert_eq!(t.frees.iter().sum::<u64>(), 0);
    }

    #[test]
    fn suspend_guard_skips_counting() {
        let c = Arc::new(RankAllocCounters::new());
        install(&c, Phase::Other);
        let before = c.snapshot();
        {
            let _g = suspend();
            let v = vec![0u8; 512];
            std::hint::black_box(&v);
            {
                let _g2 = suspend(); // nested
                let w = vec![0u8; 512];
                std::hint::black_box(&w);
            }
        }
        let mid = c.snapshot();
        let v = vec![0u8; 64];
        std::hint::black_box(&v);
        clear();
        assert_eq!(mid, before, "suspended allocations were counted");
        let after = c.snapshot();
        assert!(after.allocs[Phase::Other as usize] > mid.allocs[Phase::Other as usize]);
    }

    #[test]
    fn saved_ctx_swap_round_trips() {
        let c = Arc::new(RankAllocCounters::new());
        install(&c, Phase::Motion);
        let saved = swap_ctx(SavedCtx::EMPTY);
        // Unattributed while swapped out.
        let v = vec![0u8; 256];
        std::hint::black_box(&v);
        let none = c.snapshot();
        assert_eq!(none.allocs[Phase::Motion as usize], 0);
        let empty = swap_ctx(saved);
        let w = vec![0u8; 256];
        std::hint::black_box(&w);
        clear();
        let _ = empty;
        let s = c.snapshot();
        assert!(s.allocs[Phase::Motion as usize] >= 1);
        assert!(s.bytes[Phase::Motion as usize] >= 256);
    }

    #[test]
    fn out_of_range_phase_routes_to_other() {
        // In-range phases map to their own bucket.
        for p in 0..NUM_PHASES {
            assert_eq!(phase_slot(p as u8), p);
        }
        // The public API (`install`/`set_phase`) can only produce in-range
        // values, but the raw context byte could hold anything; unknown
        // phases must land in Other, not in the last real bucket.
        for raw in [NUM_PHASES as u8, 7, 100, 200, u8::MAX] {
            assert_eq!(phase_slot(raw), Phase::Other as usize);
        }
    }

    #[test]
    fn alloc_record_wire_round_trip() {
        let rec = AllocRecord { step: 7, allocs: [1, 2, 3, 4, 5], bytes: [10, 20, 30, 40, 50] };
        let bytes = rec.to_wire_bytes();
        let back = AllocRecord::from_wire_bytes(&bytes).unwrap();
        assert_eq!(rec, back);
        let tot = AllocTotals {
            allocs: [1; NUM_PHASES],
            bytes: [2; NUM_PHASES],
            frees: [3; NUM_PHASES],
            freed_bytes: [4; NUM_PHASES],
            peak_bytes: 99,
        };
        let bytes = tot.to_wire_bytes();
        assert_eq!(AllocTotals::from_wire_bytes(&bytes).unwrap(), tot);
    }
}
