//! Per-rank virtual-time event tracing with a Chrome/Perfetto
//! `trace_event` JSON exporter.
//!
//! Every span is recorded on the *virtual* clock, so a trace shows the
//! simulated machine's timeline (what the paper's SP2 was doing), not host
//! scheduling noise — and because virtual time is deterministic, two runs of
//! the same case export byte-identical JSON.
//!
//! Recording is zero-cost when disabled: the runtime holds `Option<Tracer>`
//! and every instrumentation point is a single `is_some` branch.
//!
//! Span taxonomy (categories): `phase` (RAII phase guards), `comm`
//! (send/recv/collectives), `compute` (kernel work by class), `conn`
//! (donor-search serve rounds), `solver` (halo/sweep stages), `lb`
//! (repartition). See docs/OBSERVABILITY.md.

use std::fmt::Write as _;

/// Tracing configuration for a universe (today just on/off; kept as a
/// struct so sampling/filtering can grow without an API break).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    pub enabled: bool,
}

impl TraceConfig {
    pub fn enabled() -> Self {
        TraceConfig { enabled: true }
    }

    pub fn disabled() -> Self {
        TraceConfig { enabled: false }
    }
}

/// Value of one span argument.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgVal {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> Self {
        ArgVal::U64(v)
    }
}

impl From<usize> for ArgVal {
    fn from(v: usize) -> Self {
        ArgVal::U64(v as u64)
    }
}

impl From<f64> for ArgVal {
    fn from(v: f64) -> Self {
        ArgVal::F64(v)
    }
}

impl From<&str> for ArgVal {
    fn from(v: &str) -> Self {
        ArgVal::Str(v.to_string())
    }
}

/// One completed span on a rank's virtual timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub cat: &'static str,
    pub name: &'static str,
    /// Start, virtual seconds.
    pub ts: f64,
    /// Duration, virtual seconds (>= 0).
    pub dur: f64,
    pub args: Vec<(&'static str, ArgVal)>,
}

/// Per-rank span recorder.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Record a completed span `[ts, ts + dur]`.
    pub fn complete(
        &mut self,
        cat: &'static str,
        name: &'static str,
        ts: f64,
        dur: f64,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        self.events.push(TraceEvent { cat, name, ts, dur: dur.max(0.0), args });
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// The trace of one rank, as returned by a traced universe run.
#[derive(Clone, Debug, Default)]
pub struct RankTrace {
    pub rank: usize,
    pub events: Vec<TraceEvent>,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Format a non-negative virtual-seconds quantity as Chrome microseconds.
/// Fixed precision (3 decimals = nanosecond resolution) keeps the output
/// deterministic and viewer-friendly.
fn write_us(out: &mut String, seconds: f64) {
    let _ = write!(out, "{:.3}", seconds * 1.0e6);
}

fn write_arg(out: &mut String, v: &ArgVal) {
    match v {
        ArgVal::U64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgVal::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        ArgVal::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Export rank traces in the Chrome `trace_event` JSON format ("X" complete
/// events; one Chrome *process* per rank, timestamps in virtual
/// microseconds). Open the file in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_json(ranks: &[RankTrace]) -> String {
    let total: usize = ranks.iter().map(|r| r.events.len()).sum();
    let mut out = String::with_capacity(128 + 160 * total);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for rt in ranks {
        if !first {
            out.push(',');
        }
        first = false;
        // Process metadata: name each Chrome "process" after the rank.
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{0},\"tid\":0,\
             \"args\":{{\"name\":\"rank {0}\"}}}}",
            rt.rank
        );
        for e in &rt.events {
            let _ = write!(out, ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\"", e.name, e.cat);
            let _ = write!(out, ",\"pid\":{},\"tid\":0,\"ts\":", rt.rank);
            write_us(&mut out, e.ts);
            out.push_str(",\"dur\":");
            write_us(&mut out, e.dur);
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(k, &mut out);
                    out.push_str("\":");
                    write_arg(&mut out, v);
                }
                out.push('}');
            }
            out.push('}');
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\"}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exporter_produces_complete_events() {
        let mut t = Tracer::new();
        t.complete("phase", "flow", 0.0, 1.5e-3, vec![("step", ArgVal::U64(0))]);
        t.complete(
            "comm",
            "send",
            2.0e-3,
            1.0e-6,
            vec![("dst", 1usize.into()), ("bytes", 512usize.into())],
        );
        let json = chrome_trace_json(&[RankTrace { rank: 0, events: t.into_events() }]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"flow\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1500.000"));
        assert!(json.contains("\"dst\":1"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn exporter_is_deterministic() {
        let mk = || {
            let mut t = Tracer::new();
            t.complete("compute", "flow", 0.125, 0.25, vec![("flops", ArgVal::F64(1.0e6))]);
            chrome_trace_json(&[RankTrace { rank: 3, events: t.into_events() }])
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn escaping_handles_specials() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut t = Tracer::new();
        t.complete("comm", "recv", 1.0, -0.5, vec![]);
        assert_eq!(t.events()[0].dur, 0.0);
    }
}
