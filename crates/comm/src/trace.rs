//! Per-rank virtual-time event tracing with a Chrome/Perfetto
//! `trace_event` JSON exporter.
//!
//! Every span is recorded on the *virtual* clock, so a trace shows the
//! simulated machine's timeline (what the paper's SP2 was doing), not host
//! scheduling noise — and because virtual time is deterministic, two runs of
//! the same case export byte-identical JSON.
//!
//! Recording is zero-cost when disabled: the runtime holds `Option<Tracer>`
//! and every instrumentation point is a single `is_some` branch.
//!
//! Span taxonomy (categories): `phase` (RAII phase guards), `comm`
//! (send/recv/collectives), `compute` (kernel work by class), `conn`
//! (donor-search serve rounds), `solver` (halo/sweep stages), `lb`
//! (repartition). See docs/OBSERVABILITY.md.

use crate::flight::StepRecord;
use crate::sink::{SinkWriter, StreamConfig};
use crate::wire::{intern, Wire, WireError, WireReader};
use std::fmt::Write as _;

/// The span categories the workspace emits, in the order of their
/// [`CategoryFilter`] bits.
pub const CATEGORIES: [&str; 6] = ["phase", "comm", "compute", "conn", "solver", "lb"];

/// Which span categories a tracer records, as a bitmask over
/// [`CATEGORIES`]. Unknown categories are always recorded (bit 7), so a
/// filter can never silently hide a span taxonomy extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CategoryFilter(u8);

impl Default for CategoryFilter {
    fn default() -> Self {
        CategoryFilter::ALL
    }
}

impl CategoryFilter {
    /// Every category (the default).
    pub const ALL: CategoryFilter = CategoryFilter(0xff);

    /// No known category (unknown ones still pass).
    pub const NONE: CategoryFilter = CategoryFilter(0x80);

    fn bit(cat: &str) -> Option<u8> {
        CATEGORIES.iter().position(|&c| c == cat).map(|i| 1u8 << i)
    }

    /// Enable `cat` on top of `self`.
    #[must_use]
    pub fn with(self, cat: &str) -> Self {
        match Self::bit(cat) {
            Some(b) => CategoryFilter(self.0 | b),
            None => self,
        }
    }

    /// Does the filter record spans of category `cat`?
    #[inline]
    pub fn allows(&self, cat: &str) -> bool {
        match Self::bit(cat) {
            Some(b) => self.0 & b != 0,
            None => true,
        }
    }

    /// Parse a comma-separated category list (the CLI's
    /// `--trace-filter phase,conn`). Empty string means "all".
    pub fn parse(csv: &str) -> Result<Self, String> {
        let csv = csv.trim();
        if csv.is_empty() {
            return Ok(CategoryFilter::ALL);
        }
        let mut f = CategoryFilter::NONE;
        for part in csv.split(',') {
            let part = part.trim();
            if Self::bit(part).is_none() {
                return Err(format!(
                    "unknown trace category {part:?}; choose from {}",
                    CATEGORIES.join(",")
                ));
            }
            f = f.with(part);
        }
        Ok(f)
    }
}

/// Tracing configuration for a universe: on/off, a category filter, and a
/// deterministic 1-in-N span sampler. Filtering and sampling only thin the
/// *recording*; the `Option<Tracer>` `is_some` branch at every
/// instrumentation point keeps disabled tracing zero-cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    pub enabled: bool,
    /// Categories recorded when enabled (default: all).
    pub filter: CategoryFilter,
    /// Record every Nth filter-passing span (1 = record all). Sampling is a
    /// per-rank modulo counter over the deterministic span stream, so the
    /// sampled subset is itself deterministic.
    pub sample_every: u32,
    /// When set, spans (and, in the binary format, step records) stream to
    /// one file per rank as they close instead of accumulating in memory;
    /// the run's `RankTrace`s come back empty. See [`crate::sink`].
    pub stream: Option<StreamConfig>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

impl TraceConfig {
    pub fn enabled() -> Self {
        TraceConfig { enabled: true, filter: CategoryFilter::ALL, sample_every: 1, stream: None }
    }

    pub fn disabled() -> Self {
        TraceConfig { enabled: false, filter: CategoryFilter::ALL, sample_every: 1, stream: None }
    }

    /// Restrict recording to the given filter.
    #[must_use]
    pub fn with_filter(mut self, filter: CategoryFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Record only every `n`-th filter-passing span (`n >= 1`).
    #[must_use]
    pub fn with_sampling(mut self, n: u32) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Stream telemetry to disk per rank instead of buffering in memory.
    #[must_use]
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = Some(stream);
        self
    }
}

/// Value of one span argument.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgVal {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> Self {
        ArgVal::U64(v)
    }
}

impl From<usize> for ArgVal {
    fn from(v: usize) -> Self {
        ArgVal::U64(v as u64)
    }
}

impl From<f64> for ArgVal {
    fn from(v: f64) -> Self {
        ArgVal::F64(v)
    }
}

impl From<&str> for ArgVal {
    fn from(v: &str) -> Self {
        ArgVal::Str(v.to_string())
    }
}

/// One completed span on a rank's virtual timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub cat: &'static str,
    pub name: &'static str,
    /// Start, virtual seconds.
    pub ts: f64,
    /// Duration, virtual seconds (>= 0).
    pub dur: f64,
    pub args: Vec<(&'static str, ArgVal)>,
}

impl Wire for ArgVal {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ArgVal::U64(v) => {
                buf.push(0);
                v.encode(buf);
            }
            ArgVal::F64(v) => {
                buf.push(1);
                v.encode(buf);
            }
            ArgVal::Str(s) => {
                buf.push(2);
                s.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => ArgVal::U64(u64::decode(r)?),
            1 => ArgVal::F64(f64::decode(r)?),
            2 => ArgVal::Str(String::decode(r)?),
            _ => return Err(WireError::Invalid("ArgVal discriminant")),
        })
    }
}

// Trace events travel back from child processes; cat/name/arg-keys come
// from a fixed span taxonomy and are re-interned on decode.
impl Wire for TraceEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.cat.to_string().encode(buf);
        self.name.to_string().encode(buf);
        self.ts.encode(buf);
        self.dur.encode(buf);
        buf.extend_from_slice(&(self.args.len() as u64).to_le_bytes());
        for (k, v) in &self.args {
            k.to_string().encode(buf);
            v.encode(buf);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let cat = intern(&String::decode(r)?);
        let name = intern(&String::decode(r)?);
        let ts = f64::decode(r)?;
        let dur = f64::decode(r)?;
        let nargs = r.len_prefix()?;
        let mut args = Vec::with_capacity(nargs.min(64));
        for _ in 0..nargs {
            let k = intern(&String::decode(r)?);
            args.push((k, ArgVal::decode(r)?));
        }
        Ok(TraceEvent { cat, name, ts, dur, args })
    }
}

/// Per-rank span recorder. With a streaming sink attached, spans route to
/// disk as they close and `events` stays empty.
#[derive(Debug)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    filter: CategoryFilter,
    sample_every: u32,
    /// Filter-passing spans seen so far (drives the 1-in-N sampler).
    seen: u64,
    sink: Option<SinkWriter>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// An unfiltered, unsampled recorder.
    pub fn new() -> Self {
        Tracer::with_config(TraceConfig::enabled())
    }

    /// A recorder honoring `cfg`'s category filter and sampling stride.
    /// Ignores `cfg.stream` (a sink needs a rank); use [`Tracer::for_rank`]
    /// to honor it.
    pub fn with_config(cfg: TraceConfig) -> Self {
        Tracer {
            events: Vec::new(),
            filter: cfg.filter,
            sample_every: cfg.sample_every.max(1),
            seen: 0,
            sink: None,
        }
    }

    /// The recorder for one rank of a universe, opening the streaming sink
    /// when `cfg.stream` is set.
    pub fn for_rank(cfg: &TraceConfig, rank: usize) -> Self {
        // Observability must be allocation-invisible: a traced run and an
        // untraced run of the same case must report identical per-phase
        // alloc counts, so every tracer-internal allocation (event buffers,
        // sink framing) runs with attribution suspended.
        let _quiet = crate::alloc::suspend();
        let mut t = Tracer::with_config(cfg.clone());
        t.sink = cfg.stream.as_ref().map(|s| SinkWriter::create(s, rank));
        t
    }

    /// Record a completed span `[ts, ts + dur]`. Spans outside the category
    /// filter are skipped; of the rest, every `sample_every`-th is kept.
    pub fn complete(
        &mut self,
        cat: &'static str,
        name: &'static str,
        ts: f64,
        dur: f64,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        let _quiet = crate::alloc::suspend();
        if !self.filter.allows(cat) {
            return;
        }
        let keep = self.seen % self.sample_every as u64 == 0;
        self.seen += 1;
        if !keep {
            return;
        }
        let e = TraceEvent { cat, name, ts, dur: dur.max(0.0), args };
        match &mut self.sink {
            Some(s) => s.push_event(e),
            None => self.events.push(e),
        }
    }

    /// Forward one closed step record to the streaming sink (no-op without
    /// a binary sink — in-memory runs return steps via the flight recorder).
    pub fn record_step(&mut self, rec: &StepRecord) {
        let _quiet = crate::alloc::suspend();
        if let Some(s) = &mut self.sink {
            s.push_step(rec);
        }
    }

    /// Forward one closed per-step allocation record to the streaming sink
    /// (no-op without a binary sink). Streamed in lockstep with
    /// [`Tracer::record_step`], so a truncated stream from a dead rank still
    /// yields a partial host allocation profile.
    pub fn record_alloc_step(&mut self, rec: &crate::alloc::AllocRecord) {
        let _quiet = crate::alloc::suspend();
        if let Some(s) = &mut self.sink {
            s.push_alloc_step(rec);
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Close the recorder: flush and footer the sink (if any), then return
    /// the in-memory events (empty in sink mode).
    pub fn finish(mut self, steps_dropped: u64) -> Vec<TraceEvent> {
        let _quiet = crate::alloc::suspend();
        if let Some(s) = &mut self.sink {
            s.finish(steps_dropped);
        }
        self.events
    }
}

/// The trace of one rank, as returned by a traced universe run.
#[derive(Clone, Debug, Default)]
pub struct RankTrace {
    pub rank: usize,
    pub events: Vec<TraceEvent>,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Format a non-negative virtual-seconds quantity as Chrome microseconds.
/// Fixed precision (3 decimals = nanosecond resolution) keeps the output
/// deterministic and viewer-friendly.
fn write_us(out: &mut String, seconds: f64) {
    let _ = write!(out, "{:.3}", seconds * 1.0e6);
}

fn write_arg(out: &mut String, v: &ArgVal) {
    match v {
        ArgVal::U64(x) => {
            let _ = write!(out, "{x}");
        }
        ArgVal::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        ArgVal::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Render one rank's process-metadata event (names the Chrome "process"
/// after the rank). Shared verbatim by the in-memory exporter and the
/// streaming fragment sink so the two stay byte-identical.
pub(crate) fn write_process_meta(out: &mut String, rank: usize) {
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\
         \"args\":{{\"name\":\"rank {rank}\"}}}}",
    );
}

/// Render one complete ("X") event, including its leading `,\n` separator.
/// Shared by the in-memory exporter and the streaming fragment sink.
pub(crate) fn write_event_json(out: &mut String, rank: usize, e: &TraceEvent) {
    let _ = write!(out, ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\"", e.name, e.cat);
    let _ = write!(out, ",\"pid\":{rank},\"tid\":0,\"ts\":");
    write_us(out, e.ts);
    out.push_str(",\"dur\":");
    write_us(out, e.dur);
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(k, out);
            out.push_str("\":");
            write_arg(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Export rank traces in the Chrome `trace_event` JSON format ("X" complete
/// events; one Chrome *process* per rank, timestamps in virtual
/// microseconds). Open the file in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_json(ranks: &[RankTrace]) -> String {
    let total: usize = ranks.iter().map(|r| r.events.len()).sum();
    let mut out = String::with_capacity(128 + 160 * total);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for rt in ranks {
        if !first {
            out.push(',');
        }
        first = false;
        write_process_meta(&mut out, rt.rank);
        for e in &rt.events {
            write_event_json(&mut out, rt.rank, e);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\"}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exporter_produces_complete_events() {
        let mut t = Tracer::new();
        t.complete("phase", "flow", 0.0, 1.5e-3, vec![("step", ArgVal::U64(0))]);
        t.complete(
            "comm",
            "send",
            2.0e-3,
            1.0e-6,
            vec![("dst", 1usize.into()), ("bytes", 512usize.into())],
        );
        let json = chrome_trace_json(&[RankTrace { rank: 0, events: t.into_events() }]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"flow\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1500.000"));
        assert!(json.contains("\"dst\":1"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn trace_event_wire_roundtrip() {
        let e = TraceEvent {
            cat: "comm",
            name: "send",
            ts: 1.25,
            dur: 0.5,
            args: vec![
                ("dst", ArgVal::U64(3)),
                ("stall", ArgVal::F64(-0.0)),
                ("note", ArgVal::Str("hé".into())),
            ],
        };
        let back = TraceEvent::from_wire_bytes(&e.to_wire_bytes()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn exporter_is_deterministic() {
        let mk = || {
            let mut t = Tracer::new();
            t.complete("compute", "flow", 0.125, 0.25, vec![("flops", ArgVal::F64(1.0e6))]);
            chrome_trace_json(&[RankTrace { rank: 3, events: t.into_events() }])
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn escaping_handles_specials() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut t = Tracer::new();
        t.complete("comm", "recv", 1.0, -0.5, vec![]);
        assert_eq!(t.events()[0].dur, 0.0);
    }

    #[test]
    fn category_filter_parses_and_matches() {
        let f = CategoryFilter::parse("phase,conn").unwrap();
        assert!(f.allows("phase"));
        assert!(f.allows("conn"));
        assert!(!f.allows("comm"));
        assert!(!f.allows("compute"));
        // Unknown categories always pass (future taxonomy extensions).
        assert!(f.allows("somenewcat"));
        assert!(CategoryFilter::parse("").unwrap().allows("comm"));
        assert!(CategoryFilter::parse(" phase , lb ").unwrap().allows("lb"));
        assert!(CategoryFilter::parse("bogus").is_err());
    }

    #[test]
    fn tracer_drops_filtered_categories() {
        let cfg = TraceConfig::enabled().with_filter(CategoryFilter::parse("phase,conn").unwrap());
        let mut t = Tracer::with_config(cfg);
        t.complete("phase", "flow", 0.0, 1.0, vec![]);
        t.complete("comm", "send", 0.1, 0.1, vec![]);
        t.complete("compute", "flow", 0.2, 0.1, vec![]);
        t.complete("conn", "serve", 0.3, 0.1, vec![]);
        let cats: Vec<&str> = t.events().iter().map(|e| e.cat).collect();
        assert_eq!(cats, vec!["phase", "conn"]);
    }

    #[test]
    fn sampling_keeps_every_nth_span() {
        let mut t = Tracer::with_config(TraceConfig::enabled().with_sampling(3));
        for i in 0..10 {
            t.complete("comm", "send", i as f64, 0.1, vec![]);
        }
        // Spans 0, 3, 6, 9 survive.
        let ts: Vec<f64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0.0, 3.0, 6.0, 9.0]);
        // Filtered-out spans do not advance the sampling stream.
        let cfg = TraceConfig::enabled()
            .with_filter(CategoryFilter::parse("conn").unwrap())
            .with_sampling(2);
        let mut t = Tracer::with_config(cfg);
        for i in 0..4 {
            t.complete("comm", "send", i as f64, 0.1, vec![]);
            t.complete("conn", "serve", 10.0 + i as f64, 0.1, vec![]);
        }
        let ts: Vec<f64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![10.0, 12.0]);
    }
}
