//! `OVERSET_COMM_WATCHDOG` diagnostics, exercised end to end.
//!
//! The watchdog period is read once per process through a `OnceLock`, and
//! its reports go to raw stderr — so each scenario runs in a *subprocess*
//! (this same test binary re-executed with a marker env var) whose stderr
//! the outer test captures and asserts on. Without the marker the scenario
//! tests are no-ops, so a plain `cargo test` sweep stays fast and silent.

use std::process::Command;
use std::time::Duration;

use overset_comm::{MachineModel, Universe};

/// Marker env var selecting the scenario a child process should actually
/// run; the watchdog period itself comes from `OVERSET_COMM_WATCHDOG`.
const SCENARIO_ENV: &str = "OVERSET_WATCHDOG_TEST_SCENARIO";

fn in_scenario(name: &str) -> bool {
    std::env::var(SCENARIO_ENV).as_deref() == Ok(name)
}

/// Re-exec this test binary running exactly `scenario`, with the watchdog
/// armed at 50 ms, and return the child's captured stderr.
fn run_scenario(scenario: &str) -> String {
    run_scenario_with_value(scenario, "0.05")
}

/// Like [`run_scenario`], but with an arbitrary `OVERSET_COMM_WATCHDOG`
/// value — the invalid-value tests set nonsense on purpose.
fn run_scenario_with_value(scenario: &str, watchdog_value: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["--exact", scenario, "--nocapture", "--test-threads", "1"])
        .env(SCENARIO_ENV, scenario)
        .env("OVERSET_COMM_WATCHDOG", watchdog_value)
        .output()
        .expect("failed to spawn scenario subprocess");
    assert!(
        out.status.success(),
        "scenario {scenario} subprocess failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

// ---- scenario bodies (no-ops unless selected via the marker env) --------

/// Rank 0 blocks in `recv(src=1, tag=7)` while rank 1 sits out several
/// watchdog periods in *host* time before sending.
#[test]
fn scenario_stuck_recv() {
    if !in_scenario("scenario_stuck_recv") {
        return;
    }
    let m = MachineModel::modern();
    Universe::builder().ranks(2).machine(&m).run(|c| {
        if c.rank() == 0 {
            c.recv::<u32>(1, 7)
        } else {
            std::thread::sleep(Duration::from_millis(250));
            c.send(0, 7, 42u32, 4);
            0
        }
    });
}

/// Rank 0 enters a collective immediately; rank 1 arrives several watchdog
/// periods later, leaving rank 0 waiting inside the round rendezvous.
#[test]
fn scenario_stalled_collective() {
    if !in_scenario("scenario_stalled_collective") {
        return;
    }
    let m = MachineModel::modern();
    Universe::builder().ranks(2).machine(&m).run(|c| {
        if c.rank() == 1 {
            std::thread::sleep(Duration::from_millis(250));
        }
        c.barrier();
    });
}

/// A healthy exchange + collective, well under the watchdog period.
#[test]
fn scenario_healthy_run() {
    if !in_scenario("scenario_healthy_run") {
        return;
    }
    let m = MachineModel::modern();
    Universe::builder().ranks(2).machine(&m).run(|c| {
        if c.rank() == 0 {
            c.send(1, 3, 7u8, 1);
        } else {
            c.recv::<u8>(0, 3);
        }
        c.barrier();
        c.allgather(c.rank(), 8)
    });
}

// ---- the actual assertions ----------------------------------------------

#[test]
fn watchdog_reports_stuck_receive_with_src_and_tag() {
    let stderr = run_scenario("scenario_stuck_recv");
    assert!(
        stderr.contains("[overset-comm watchdog] rank 0 stuck in recv(src=1, tag=7)"),
        "missing stuck-recv diagnostic with src/tag:\n{stderr}"
    );
    // The run recovers after rank 1's late send: no rank may still be stuck.
    assert!(stderr.contains("buffered=[]"), "diagnostic should list the empty buffer:\n{stderr}");
}

#[test]
fn watchdog_reports_stalled_collective_with_generation() {
    let stderr = run_scenario("scenario_stalled_collective");
    // Rank 0 waits *inside* round gen=0 for the publisher; depending on
    // timing it can also be stuck *opening* the round. Either diagnostic
    // must name the generation and the arrival count.
    assert!(
        stderr.contains("stuck in collective round gen=0")
            || stderr.contains("stuck opening collective round gen=0"),
        "missing stalled-collective diagnostic:\n{stderr}"
    );
    assert!(stderr.contains("arrived=1/2"), "diagnostic should report arrivals:\n{stderr}");
}

#[test]
fn unparsable_watchdog_value_warns_once_and_disables() {
    // The stuck-recv scenario guarantees a blocking wait, so the period is
    // definitely consulted; the run still completes after rank 1's late send.
    let stderr = run_scenario_with_value("scenario_stuck_recv", "5 minutes");
    assert!(
        stderr.contains("ignoring OVERSET_COMM_WATCHDOG=\"5 minutes\""),
        "typo'd value must be called out, not silently ignored:\n{stderr}"
    );
    assert!(stderr.contains("watchdog disabled"), "{stderr}");
    // One warning per process, not one per blocked wait.
    assert_eq!(
        stderr.matches("ignoring OVERSET_COMM_WATCHDOG").count(),
        1,
        "warning must be one-time:\n{stderr}"
    );
    // And the watchdog really is off: no stuck diagnostics despite the stall.
    assert!(!stderr.contains("stuck in recv"), "{stderr}");
}

#[test]
fn non_positive_watchdog_value_warns_and_disables() {
    let stderr = run_scenario_with_value("scenario_stuck_recv", "0");
    assert!(
        stderr.contains("ignoring OVERSET_COMM_WATCHDOG=\"0\""),
        "non-positive value must be called out:\n{stderr}"
    );
    assert!(!stderr.contains("stuck in recv"), "{stderr}");
}

#[test]
fn watchdog_is_silent_on_a_healthy_run() {
    let stderr = run_scenario("scenario_healthy_run");
    assert!(
        !stderr.contains("[overset-comm watchdog]"),
        "watchdog must stay silent when nothing is stuck:\n{stderr}"
    );
}
