//! Wire-format property tests (`decode ∘ encode = id` under randomized
//! inputs, hostile-byte rejection) and a golden byte test pinning schema
//! version 1. If the golden test fails, the wire format changed: bump
//! `WIRE_SCHEMA_VERSION` and document the migration in docs/TRANSPORT.md —
//! never silently re-pin the bytes.

use overset_comm::{Wire, WireError, WIRE_SCHEMA_VERSION};
use proptest::prelude::*;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_wire_bytes();
    let back = T::from_wire_bytes(&bytes).expect("decode of own encoding");
    assert_eq!(&back, v);
}

/// Build a string from raw code units, skipping invalid scalar values —
/// exercises multi-byte UTF-8 without needing a char strategy.
fn string_from(units: &[u32]) -> String {
    units.iter().filter_map(|&u| char::from_u32(u % 0x11_0000)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn integers_roundtrip(a in 0u64..u64::MAX, b in -(1i64 << 61)..(1i64 << 61), c in 0usize..usize::MAX) {
        roundtrip(&a);
        roundtrip(&i64::MIN);
        roundtrip(&i64::MAX);
        roundtrip(&(a as u8));
        roundtrip(&(a as u16));
        roundtrip(&(a as u32));
        roundtrip(&b);
        roundtrip(&(b as i8));
        roundtrip(&(b as i32));
        roundtrip(&c);
        roundtrip(&(a, b, c));
        roundtrip(&(a as u8, b, c, a, (a as u32, b as i16)));
    }

    /// Any f64/f32 bit pattern — including NaNs with payload bits, both
    /// infinities and negative zero — survives bitwise.
    #[test]
    fn floats_roundtrip_bitwise(bits in 0u64..u64::MAX) {
        let x = f64::from_bits(bits);
        let bx = f64::from_wire_bytes(&x.to_wire_bytes()).unwrap();
        prop_assert_eq!(bx.to_bits(), bits);
        let y = f32::from_bits(bits as u32);
        let by = f32::from_wire_bytes(&y.to_wire_bytes()).unwrap();
        prop_assert_eq!(by.to_bits(), bits as u32);
    }

    #[test]
    fn containers_roundtrip(v in prop::collection::vec(0u64..u64::MAX, 0..40),
                            units in prop::collection::vec(0u32..0x11_0000, 0..24),
                            opt_tag in 0u8..4) {
        roundtrip(&v);
        let s = string_from(&units);
        roundtrip(&s);
        let o: Option<u32> = if opt_tag % 2 == 0 { None } else { Some(opt_tag as u32) };
        roundtrip(&o);
        let r: Result<u64, String> =
            if opt_tag < 2 { Ok(v.len() as u64) } else { Err(s.clone()) };
        roundtrip(&r);
        roundtrip(&vec![(s, o), (String::new(), None)]);
    }

    #[test]
    fn arrays_and_boxes_roundtrip(v in prop::collection::vec(0u16..u16::MAX, 4)) {
        let a = [v[0], v[1], v[2], v[3]];
        roundtrip(&a);
        roundtrip(&Box::new(a));
        roundtrip(&vec![a, a]);
    }

    /// Arbitrary bytes never panic the decoder: they decode or error, and a
    /// successful decode re-encodes to the bytes it consumed.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..u8::MAX, 0..64)) {
        if let Ok(v) = Vec::<(u32, String)>::from_wire_bytes(&bytes) {
            prop_assert_eq!(v.to_wire_bytes(), bytes);
        }
        let _ = <(u64, Vec<f64>)>::from_wire_bytes(&bytes);
        let _ = Option::<Vec<u64>>::from_wire_bytes(&bytes);
        let _ = String::from_wire_bytes(&bytes);
        let _ = Result::<u8, String>::from_wire_bytes(&bytes);
    }

    /// Trailing garbage after a valid value is always rejected.
    #[test]
    fn trailing_bytes_rejected(v in 0u64..u64::MAX, extra in 1usize..8) {
        let mut bytes = v.to_wire_bytes();
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(matches!(
            u64::from_wire_bytes(&bytes),
            Err(WireError::Trailing { .. })
        ));
    }

    /// Truncating a valid encoding anywhere is always an error, never a
    /// misread.
    #[test]
    fn truncations_rejected(v in prop::collection::vec(0u64..u64::MAX, 1..10),
                            cut in 0usize..1000) {
        let bytes = v.to_wire_bytes();
        let cut = cut % bytes.len();
        prop_assert!(Vec::<u64>::from_wire_bytes(&bytes[..cut]).is_err());
    }
}

// ---------------------------------------------------------------------------
// Golden bytes: schema version 1
// ---------------------------------------------------------------------------

/// The exact bytes of the primitive encodings for one value of every
/// primitive shape — unchanged since schema v1 (the v2 and v3 bumps each
/// appended fields to `RankOutput` without touching any primitive
/// encoding; see docs/TRANSPORT.md). These bytes are a *contract* (they
/// cross process boundaries between independently built binaries);
/// changing any of them requires a `WIRE_SCHEMA_VERSION` bump.
#[test]
fn golden_bytes_pin_primitive_encodings() {
    assert_eq!(WIRE_SCHEMA_VERSION, 3, "schema bumped: re-pin the golden bytes below");

    // Little-endian fixed-width integers.
    assert_eq!(0x1122u16.to_wire_bytes(), [0x22, 0x11]);
    assert_eq!(0x11223344u32.to_wire_bytes(), [0x44, 0x33, 0x22, 0x11]);
    assert_eq!(
        0x1122334455667788u64.to_wire_bytes(),
        [0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
    );
    // usize travels as u64 regardless of host width.
    assert_eq!(5usize.to_wire_bytes(), [5, 0, 0, 0, 0, 0, 0, 0]);
    assert_eq!((-2i32).to_wire_bytes(), [0xFE, 0xFF, 0xFF, 0xFF]);

    // Floats as IEEE-754 bit patterns, little-endian.
    assert_eq!(1.0f64.to_wire_bytes(), [0, 0, 0, 0, 0, 0, 0xF0, 0x3F]);
    assert_eq!((-2.5f32).to_wire_bytes(), [0, 0, 0x20, 0xC0]);

    // bool and unit.
    assert_eq!(true.to_wire_bytes(), [1]);
    assert_eq!(false.to_wire_bytes(), [0]);
    assert_eq!(().to_wire_bytes(), Vec::<u8>::new());

    // Length-prefixed containers: u64 count, then elements.
    assert_eq!(vec![1u8, 2, 3].to_wire_bytes(), [3, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3]);
    assert_eq!(String::from("hi").to_wire_bytes(), [2, 0, 0, 0, 0, 0, 0, 0, b'h', b'i']);

    // Option/Result: one discriminant byte, then the payload.
    assert_eq!(Option::<u8>::None.to_wire_bytes(), [0]);
    assert_eq!(Some(7u8).to_wire_bytes(), [1, 7]);
    assert_eq!(Result::<u8, u8>::Ok(1).to_wire_bytes(), [0, 1]);
    assert_eq!(Result::<u8, u8>::Err(2).to_wire_bytes(), [1, 2]);

    // Tuples and arrays: fields in order, no framing.
    assert_eq!((0x0Au8, 0x0Bu8).to_wire_bytes(), [0x0A, 0x0B]);
    assert_eq!([0x01u8, 0x02, 0x03].to_wire_bytes(), [1, 2, 3]);
}
