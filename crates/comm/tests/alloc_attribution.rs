//! Allocation-attribution conformance: heap allocations made by rank code
//! must land on the allocating rank and the phase it was in — across the
//! 1:1 thread backend, the M:N coroutine scheduler (a yield mid-phase must
//! not leak the attribution to whichever rank runs next on the worker),
//! and the process transport (child-group counters merged on `Done`).
//!
//! The technique is differential: run a workload twice, identical except
//! that rank 1 makes two known extra allocations per step inside the
//! connectivity phase (one before and one after a barrier, so under M:N
//! the coroutine is suspended between them). The per-phase counters of the
//! two runs must differ by *exactly* those allocations and nothing else.

use overset_comm::runtime::UniverseBuilder;
use overset_comm::{
    MachineModel, Phase, RankOutput, TransportConfig, Universe, WorkClass, NUM_PHASES,
};

const NRANKS: usize = 4;
const STEPS: usize = 3;
const EXTRA_BYTES: usize = 4096;
const CONN: usize = Phase::Connectivity as usize;

fn base() -> UniverseBuilder {
    Universe::builder().ranks(NRANKS).machine(&MachineModel::modern())
}

fn mn() -> UniverseBuilder {
    base().max_threads(2)
}

fn proc(test: &str) -> UniverseBuilder {
    base().transport(TransportConfig::process_for_test(2, test))
}

/// The workload: per step, a flow compute + barrier, then a connectivity
/// phase with a mid-phase barrier. With `extra`, rank 1 allocates
/// `EXTRA_BYTES` on each side of that barrier.
fn scenario(b: UniverseBuilder, extra: bool) -> Vec<RankOutput<u64>> {
    b.run(move |c| {
        for _ in 0..STEPS {
            {
                let mut ph = c.phase(Phase::Flow);
                ph.compute(5.0e4, WorkClass::Flow);
                ph.barrier();
            }
            {
                let mut ph = c.phase(Phase::Connectivity);
                if extra && ph.rank() == 1 {
                    std::hint::black_box(vec![0u8; EXTRA_BYTES]);
                }
                // Mid-phase suspension point: under M:N the coroutine
                // yields here and another rank reuses this OS thread.
                ph.barrier();
                if extra && ph.rank() == 1 {
                    std::hint::black_box(vec![0u8; EXTRA_BYTES]);
                }
                ph.barrier();
            }
            c.end_step();
        }
        c.rank() as u64
    })
}

/// The extra run differs from the baseline by exactly 2 allocations of
/// `EXTRA_BYTES` per step, on rank 1, in connectivity — zero drift
/// anywhere else (any other delta means attribution leaked).
fn assert_exact_delta(base: &[RankOutput<u64>], extra: &[RankOutput<u64>]) {
    for (r, (b, e)) in base.iter().zip(extra).enumerate() {
        for p in 0..NUM_PHASES {
            let (da, db) = if r == 1 && p == CONN {
                ((2 * STEPS) as u64, (2 * STEPS * EXTRA_BYTES) as u64)
            } else {
                (0, 0)
            };
            assert_eq!(
                e.alloc.allocs[p] - b.alloc.allocs[p],
                da,
                "alloc-count delta for rank {r} phase {p}"
            );
            assert_eq!(
                e.alloc.bytes[p] - b.alloc.bytes[p],
                db,
                "alloc-bytes delta for rank {r} phase {p}"
            );
        }
        // The per-step series localizes the same delta to every step.
        assert_eq!(b.alloc_steps.len(), STEPS);
        assert_eq!(e.alloc_steps.len(), STEPS);
        for (s, (bs, es)) in b.alloc_steps.iter().zip(&e.alloc_steps).enumerate() {
            assert_eq!(bs.step, s as u64);
            assert_eq!(es.step, s as u64);
            let (da, db) = if r == 1 { (2u64, (2 * EXTRA_BYTES) as u64) } else { (0, 0) };
            assert_eq!(es.allocs[CONN] - bs.allocs[CONN], da, "rank {r} step {s} conn allocs");
            assert_eq!(es.bytes[CONN] - bs.bytes[CONN], db, "rank {r} step {s} conn bytes");
        }
    }
}

#[test]
fn connectivity_allocs_attribute_to_rank_and_phase_inproc() {
    assert_exact_delta(&scenario(base(), false), &scenario(base(), true));
}

/// A coroutine switch mid-phase (at the barrier between the two extra
/// allocations) must not leak rank 1's attribution to the rank that runs
/// next on the same worker thread.
#[test]
fn attribution_survives_mn_coroutine_switches() {
    assert_exact_delta(&scenario(mn(), false), &scenario(mn(), true));
}

/// Child processes count their own ranks' allocations; the counters ride
/// the `Done` wire message back to the parent intact.
#[test]
fn attribution_merges_from_proc_children() {
    let b = scenario(proc("attribution_merges_from_proc_children"), false);
    let e = scenario(proc("attribution_merges_from_proc_children"), true);
    assert_exact_delta(&b, &e);
}

/// The bit-gate contract: for a fixed configuration, two identical runs
/// produce identical per-phase and per-step allocation counts.
#[test]
fn alloc_counts_are_bit_identical_run_to_run() {
    for build in [base, mn] {
        let a = scenario(build(), true);
        let b = scenario(build(), true);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.alloc, rb.alloc, "per-phase totals must be deterministic");
            assert_eq!(ra.alloc_steps, rb.alloc_steps, "per-step series must be deterministic");
        }
    }
}

/// Frees are attributed too: the extra vectors die in the phase that made
/// them, so rank 1's connectivity frees grow by the same amount.
#[test]
fn frees_follow_the_allocating_phase() {
    let b = scenario(base(), false);
    let e = scenario(base(), true);
    assert_eq!(e[1].alloc.frees[CONN] - b[1].alloc.frees[CONN], (2 * STEPS) as u64);
    assert_eq!(
        e[1].alloc.freed_bytes[CONN] - b[1].alloc.freed_bytes[CONN],
        (2 * STEPS * EXTRA_BYTES) as u64
    );
}
