//! Property-based tests of the virtual-time runtime: determinism, clock
//! monotonicity and collective semantics under arbitrary communication
//! patterns.

use overset_comm::{MachineModel, Universe, WorkClass};
use proptest::prelude::*;

fn machine() -> MachineModel {
    MachineModel::ibm_sp2()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A ring exchange with arbitrary per-rank work is deterministic and
    /// every clock is monotone (≥ its own compute time).
    #[test]
    fn ring_exchange_deterministic(
        nranks in 2usize..8,
        work in prop::collection::vec(0u64..2_000_000, 2..8),
        bytes in 1usize..100_000,
    ) {
        let work = std::sync::Arc::new(work);
        let run = || {
            let w = std::sync::Arc::clone(&work);
            Universe::builder().ranks(nranks).machine(&machine()).run(move |c| {
                let me = c.rank();
                let flops = w[me % w.len()] as f64;
                c.compute(flops, WorkClass::Flow);
                let next = (me + 1) % c.size();
                let prev = (me + c.size() - 1) % c.size();
                c.send(next, 1, me as u64, bytes);
                let got: u64 = c.recv(prev, 1);
                c.barrier();
                (got, c.now())
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.result.0, y.result.0);
            prop_assert_eq!(x.result.1.to_bits(), y.result.1.to_bits());
        }
        // Ring values correct.
        for (r, o) in a.iter().enumerate() {
            let prev = (r + nranks - 1) % nranks;
            prop_assert_eq!(o.result.0, prev as u64);
        }
        // Post-barrier clocks identical and at least the max compute time.
        let t = a[0].result.1;
        let max_work = (0..nranks)
            .map(|r| machine().compute_time(work[r % work.len()] as f64, WorkClass::Flow, 0.0))
            .fold(0.0f64, f64::max);
        prop_assert!(t >= max_work);
        for o in &a {
            prop_assert_eq!(o.result.1.to_bits(), t.to_bits());
        }
    }

    /// Allgather returns rank-ordered contributions for any rank count, and
    /// repeated rounds never mix generations.
    #[test]
    fn allgather_semantics(
        nranks in 1usize..10,
        rounds in 1usize..12,
    ) {
        let out = Universe::builder().ranks(nranks).machine(&machine()).run(move |c| {
            (0..rounds).map(|round| c.allgather(c.rank() * 1000 + round, 8)).collect::<Vec<_>>()
        });
        for o in &out {
            for (round, v) in o.result.iter().enumerate() {
                prop_assert_eq!(v.len(), nranks);
                for (r, &x) in v.iter().enumerate() {
                    prop_assert_eq!(x, r * 1000 + round);
                }
            }
        }
    }

    /// Virtual time respects the machine: more flops or more bytes never
    /// make a run finish earlier.
    #[test]
    fn virtual_time_monotone_in_work(
        flops in 1.0e6f64..1.0e8,
        extra in 1.0e5f64..1.0e8,
        bytes in 1usize..1_000_000,
    ) {
        let t = |f: f64, by: usize| {
            let out = Universe::builder().ranks(2).machine(&machine()).run(move |c| {
                if c.rank() == 0 {
                    c.compute(f, WorkClass::Flow);
                    c.send(1, 0, (), by);
                } else {
                    c.recv::<()>(0, 0);
                }
                c.barrier();
                c.now()
            });
            out[0].result
        };
        prop_assert!(t(flops + extra, bytes) > t(flops, bytes));
        prop_assert!(t(flops, bytes * 2) > t(flops, bytes));
    }

    /// Messages between many pairs with shuffled receive order (by tag)
    /// always deliver the right payloads.
    #[test]
    fn tagged_delivery_with_reordering(
        nmsg in 1usize..20,
    ) {
        let out = Universe::builder().ranks(2).machine(&machine()).run(move |c| {
            if c.rank() == 0 {
                for t in 0..nmsg as u64 {
                    c.send(1, t, t * 7, 64);
                }
                Vec::new()
            } else {
                // Receive in reverse tag order.
                (0..nmsg as u64).rev().map(|t| (t, c.recv::<u64>(0, t))).collect()
            }
        });
        for (t, v) in &out[1].result {
            prop_assert_eq!(*v, t * 7);
        }
        prop_assert_eq!(out[1].result.len(), nmsg);
    }
}
