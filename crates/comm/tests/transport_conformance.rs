//! Transport conformance: every backend must implement the same protocol
//! semantics — FIFO per (src, tag) channel, tag matching, disconnect and
//! type-mismatch errors, deterministic collectives, abort-on-peer-panic —
//! and produce bit-identical virtual time.
//!
//! Each scenario is written once against `UniverseBuilder` and run on the
//! in-process backend (1:1 threads and M:N coroutines) and on the process
//! backend (rank groups in forked OS processes). Process-backed tests pass
//! their own test path so the forked children replay exactly one test.

use overset_comm::runtime::UniverseBuilder;
use overset_comm::{MachineModel, OversetError, RankOutput, TransportConfig, Universe, Wire};

const NRANKS: usize = 4;

fn base() -> UniverseBuilder {
    Universe::builder().ranks(NRANKS).machine(&MachineModel::modern())
}

fn mn() -> UniverseBuilder {
    base().max_threads(2)
}

/// Process transport: two rank-group children ({0,1} and {2,3}), so ranks
/// 0↔2 always cross a socket. `test` is the calling test's `--exact` path.
fn proc(test: &str) -> UniverseBuilder {
    base().transport(TransportConfig::process_for_test(2, test))
}

// ---------------------------------------------------------------------------
// Ordering + tag matching
// ---------------------------------------------------------------------------

/// Rank r streams three same-tag messages and one out-of-band message to
/// rank (r+2) % 4 (always cross-group on proc:2). The receiver takes the
/// out-of-band tag first, then the stream — which must arrive FIFO.
fn scenario_ordering(b: UniverseBuilder) -> Vec<RankOutput<(Vec<u64>, u64, f64)>> {
    b.run(|c| {
        let me = c.rank() as u64;
        let dst = (c.rank() + 2) % c.size();
        let src = (c.rank() + 2) % c.size();
        for i in 0..3u64 {
            c.send(dst, 7, me * 10 + i, 32);
        }
        c.send(dst, 9, me * 1000, 8);
        let oob: u64 = c.recv(src, 9);
        let stream: Vec<u64> = (0..3).map(|_| c.recv::<u64>(src, 7)).collect();
        c.barrier();
        (stream, oob, c.now())
    })
}

fn check_ordering(out: &[RankOutput<(Vec<u64>, u64, f64)>]) {
    for (r, o) in out.iter().enumerate() {
        let src = ((r + 2) % NRANKS) as u64;
        assert_eq!(o.result.0, vec![src * 10, src * 10 + 1, src * 10 + 2], "rank {r} stream");
        assert_eq!(o.result.1, src * 1000, "rank {r} out-of-band");
    }
}

#[test]
fn ordering_and_tag_matching_inproc() {
    check_ordering(&scenario_ordering(base()));
    check_ordering(&scenario_ordering(mn()));
}

#[test]
fn ordering_and_tag_matching_proc() {
    let out = scenario_ordering(proc("ordering_and_tag_matching_proc"));
    check_ordering(&out);
    // Same protocol, same bytes, same clocks: the process run must agree
    // with the in-process run bit for bit.
    let reference = scenario_ordering(base());
    for (a, b) in out.iter().zip(&reference) {
        assert_eq!(a.result.2.to_bits(), b.result.2.to_bits(), "clock diverged across backends");
        assert_eq!(a.stats.msgs_sent, b.stats.msgs_sent);
        assert_eq!(a.stats.bytes_sent, b.stats.bytes_sent);
        assert_eq!(a.stats.final_clock.to_bits(), b.stats.final_clock.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

type CollectiveRound = (Vec<usize>, f64, usize, f64);

fn scenario_collectives(b: UniverseBuilder) -> Vec<RankOutput<CollectiveRound>> {
    b.run(|c| {
        c.compute(1.0e6 * (c.rank() + 1) as f64, overset_comm::WorkClass::Flow);
        let gathered = c.allgather(c.rank() * 3, 8);
        let m = c.allreduce_max(c.rank() as f64 * 1.5);
        let s = c.allreduce_sum_usize(c.rank());
        c.barrier();
        (gathered, m, s, c.now())
    })
}

fn check_collectives(out: &[RankOutput<CollectiveRound>]) {
    let expect: Vec<usize> = (0..NRANKS).map(|r| r * 3).collect();
    for o in out {
        assert_eq!(o.result.0, expect);
        assert_eq!(o.result.1, (NRANKS - 1) as f64 * 1.5);
        assert_eq!(o.result.2, NRANKS * (NRANKS - 1) / 2);
        // Collectives synchronize the clock: all ranks leave equal.
        assert_eq!(o.result.3.to_bits(), out[0].result.3.to_bits());
    }
}

#[test]
fn collectives_inproc() {
    check_collectives(&scenario_collectives(base()));
    check_collectives(&scenario_collectives(mn()));
}

#[test]
fn collectives_proc() {
    let out = scenario_collectives(proc("collectives_proc"));
    check_collectives(&out);
    let reference = scenario_collectives(base());
    for (a, b) in out.iter().zip(&reference) {
        assert_eq!(a.result.3.to_bits(), b.result.3.to_bits(), "collective clock diverged");
        assert_eq!(a.stats.collectives, b.stats.collectives);
    }
}

// ---------------------------------------------------------------------------
// Error semantics: type mismatch, disconnected sender, collective mismatch
// ---------------------------------------------------------------------------

/// Rank 0 sends a `u64` to rank 2, which asks for an `f64`; rank 2 must see
/// `TypeMismatch` (not a mis-decode) on every backend.
fn scenario_type_mismatch(b: UniverseBuilder) -> Vec<RankOutput<u8>> {
    b.run(|c| {
        let mut marker = 0u8;
        if c.rank() == 0 {
            c.send(2, 5, 42u64, 8);
        } else if c.rank() == 2 {
            marker = match c.try_recv::<f64>(0, 5) {
                Err(OversetError::TypeMismatch { rank: 2, src: 0, tag: 5, .. }) => 1,
                other => panic!("expected TypeMismatch, got {other:?}"),
            };
        }
        c.barrier();
        marker
    })
}

#[test]
fn type_mismatch_inproc() {
    assert_eq!(scenario_type_mismatch(base())[2].result, 1);
    assert_eq!(scenario_type_mismatch(mn())[2].result, 1);
}

#[test]
fn type_mismatch_proc() {
    assert_eq!(scenario_type_mismatch(proc("type_mismatch_proc"))[2].result, 1);
}

/// Rank 2 finishes without sending; rank 0's receive from it must fail with
/// `Disconnected` instead of hanging — including across processes, where
/// the finish travels as a frame.
fn scenario_disconnected(b: UniverseBuilder) -> Vec<RankOutput<u8>> {
    b.run(|c| {
        if c.rank() == 0 {
            match c.try_recv::<u64>(2, 77) {
                Err(OversetError::Disconnected { rank: 0, src: 2, tag: 77 }) => 1,
                other => panic!("expected Disconnected, got {other:?}"),
            }
        } else {
            0
        }
    })
}

#[test]
fn disconnected_inproc() {
    assert_eq!(scenario_disconnected(base())[0].result, 1);
    assert_eq!(scenario_disconnected(mn())[0].result, 1);
}

#[test]
fn disconnected_proc() {
    assert_eq!(scenario_disconnected(proc("disconnected_proc"))[0].result, 1);
}

/// Rank 0 contributes a different type to the round than everyone else:
/// every rank must see `CollectiveMismatch` (the process backend detects it
/// via wire type hashes and poisons the round).
fn scenario_collective_mismatch(b: UniverseBuilder) -> Vec<RankOutput<u8>> {
    b.run(|c| {
        let ok = if c.rank() == 0 {
            matches!(c.try_allgather(1u32, 4), Err(OversetError::CollectiveMismatch { .. }))
        } else {
            matches!(c.try_allgather(1u64, 8), Err(OversetError::CollectiveMismatch { .. }))
        };
        u8::from(ok)
    })
}

#[test]
fn collective_mismatch_inproc() {
    for o in scenario_collective_mismatch(base()) {
        assert_eq!(o.result, 1);
    }
}

#[test]
fn collective_mismatch_proc() {
    for o in scenario_collective_mismatch(proc("collective_mismatch_proc")) {
        assert_eq!(o.result, 1);
    }
}

// ---------------------------------------------------------------------------
// Abort semantics: peer panic and child-process death
// ---------------------------------------------------------------------------

/// Rank 1 panics while ranks 0, 2, 3 are blocked receiving from it. The
/// universe must shut down with `RankPanicked { rank: 1 }` on every
/// backend — never hang.
fn scenario_peer_panic(b: UniverseBuilder) {
    let err = b
        .try_run(|c| {
            if c.rank() == 1 {
                panic!("deliberate failure on rank 1");
            }
            c.recv::<u64>(1, 3)
        })
        .unwrap_err();
    match err {
        OversetError::RankPanicked { rank, message, .. } => {
            assert_eq!(rank, 1);
            assert!(message.contains("deliberate failure"), "message: {message}");
        }
        other => panic!("expected RankPanicked, got {other}"),
    }
}

#[test]
fn peer_panic_aborts_inproc() {
    scenario_peer_panic(base());
    scenario_peer_panic(mn());
}

#[test]
fn peer_panic_aborts_proc() {
    scenario_peer_panic(proc("peer_panic_aborts_proc"));
}

/// A rank-group process dies without a goodbye (here: `exit(3)` mid-run,
/// standing in for a crash or an OOM kill). The parent must detect the
/// socket EOF, abort the surviving group, and surface `RankPanicked` —
/// instead of the remaining ranks hanging in `recv` forever.
#[test]
fn killed_child_process_surfaces_rank_panicked() {
    let err = proc("killed_child_process_surfaces_rank_panicked")
        .try_run(|c| {
            if c.rank() == 3 {
                // Kills the whole {2,3} group process, bypassing every
                // cleanup path. Safe: the parent router runs no ranks.
                std::process::exit(3);
            }
            c.recv::<u64>(3, 11)
        })
        .unwrap_err();
    match err {
        OversetError::RankPanicked { rank, message, .. } => {
            assert_eq!(rank, 2, "failure attributed to the dead group's first rank");
            assert!(message.contains("exited unexpectedly"), "message: {message}");
        }
        other => panic!("expected RankPanicked, got {other}"),
    }
}

/// A killed rank-group child with a binary telemetry stream attached leaves
/// truncated-but-parseable span files: every step closed before the kill is
/// recoverable from disk, and the reader names the gap. (`repro analyze
/// <dir>` turns that gap into an exit-2 diagnosis — covered in the bench
/// crate; this test proves the on-disk contract the diagnosis rests on.)
#[test]
fn killed_child_leaves_truncated_but_parseable_stream() {
    use overset_comm::trace::TraceConfig;
    use overset_comm::{read_span_dir, Phase, StreamConfig, WorkClass};

    let dir = std::env::temp_dir().join("overset_conformance_killed_stream");
    // The forked children replay this test body before `try_run`; only the
    // parent (no child env var) may clear the sink directory, or a late
    // child would wipe the other group's live stream.
    let is_parent = std::env::var_os("OVERSET_PROC_CHILD").is_none();
    if is_parent {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let err = proc("killed_child_leaves_truncated_but_parseable_stream")
        .trace(TraceConfig::enabled().with_stream(StreamConfig::binary(&dir)))
        .try_run(|c| {
            for s in 0..4 {
                {
                    let mut ph = c.phase(Phase::Flow);
                    ph.compute(1.0e5, WorkClass::Flow);
                }
                c.end_step();
                if s == 1 && c.rank() == 3 {
                    // Dies right after closing step 1: steps 0..=1 are
                    // already flushed chunks, the footer never lands.
                    std::process::exit(3);
                }
            }
            c.barrier();
            0u64
        })
        .unwrap_err();
    assert!(matches!(err, OversetError::RankPanicked { .. }), "got {err}");

    let sd = read_span_dir(&dir).unwrap();
    assert!(!sd.gaps.is_empty(), "the killed group must leave at least one named gap");
    let r3 = sd.ranks.iter().find(|r| r.rank == 3).expect("rank 3 stream on disk");
    assert_eq!(r3.steps.len(), 2, "steps closed before the kill are recoverable");
    let gap = r3.truncation.as_ref().expect("rank 3 stream must be marked truncated");
    assert!(gap.contains("without a footer") || gap.contains("inside a chunk"), "{gap}");
    assert!(sd.gaps.iter().any(|g| g.starts_with("rank 3 ")), "gaps name the rank: {:?}", sd.gaps);
    // Every stream on disk — including the surviving group's, whose final
    // state depends on abort timing — must parse to a usable prefix.
    for r in &sd.ranks {
        assert!(r.steps.len() <= 4);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Cross-backend bit-equality on a mixed workload
// ---------------------------------------------------------------------------

/// A workload mixing skewed compute, pipelined sends, reductions and
/// barriers. Clocks, counters and payload bytes must agree bit for bit
/// across 1:1 in-process, M:N in-process and multi-process backends.
#[test]
fn mixed_workload_is_bit_identical_across_backends() {
    fn workload(c: &mut overset_comm::Comm) -> (f64, f64, u64) {
        let me = c.rank();
        let n = c.size();
        let mut acc = 0u64;
        for step in 0..3 {
            c.compute(5.0e5 * ((me + step) % 3 + 1) as f64, overset_comm::WorkClass::Flow);
            let dst = (me + 1) % n;
            let src = (me + n - 1) % n;
            c.send(dst, step as u64, (me * 100 + step) as u64, 256);
            acc = acc.wrapping_add(c.recv::<u64>(src, step as u64));
            let total = c.allreduce_sum(acc as f64);
            if total < 0.0 {
                unreachable!();
            }
        }
        c.barrier();
        (c.now(), c.allreduce_max(c.now()), acc)
    }

    // Process run first: children re-execute this test and must reach the
    // process-backed establish before any in-process universes would slow
    // their replay down.
    let p = proc("mixed_workload_is_bit_identical_across_backends").run(workload);
    let a = base().run(workload);
    let b = mn().run(workload);
    for (r, ((pa, aa), ba)) in p.iter().zip(&a).zip(&b).enumerate() {
        assert_eq!(pa.result.2, aa.result.2, "rank {r} payload");
        assert_eq!(pa.result.0.to_bits(), aa.result.0.to_bits(), "rank {r} clock proc vs 1:1");
        assert_eq!(aa.result.0.to_bits(), ba.result.0.to_bits(), "rank {r} clock 1:1 vs M:N");
        assert_eq!(pa.result.1.to_bits(), aa.result.1.to_bits(), "rank {r} reduced clock");
        assert_eq!(pa.stats.msgs_sent, aa.stats.msgs_sent, "rank {r} msgs");
        assert_eq!(pa.stats.bytes_sent, aa.stats.bytes_sent, "rank {r} bytes");
        assert_eq!(pa.stats.collectives, aa.stats.collectives, "rank {r} collectives");
        assert_eq!(
            pa.stats.final_clock.to_bits(),
            aa.stats.final_clock.to_bits(),
            "rank {r} final clock"
        );
    }
}

// ---------------------------------------------------------------------------
// Wire payloads that exercise nested encodings end to end
// ---------------------------------------------------------------------------

/// A nested payload (Vec of tuples with floats and strings) crosses the
/// process boundary intact, including NaN bit patterns.
#[test]
fn nested_payloads_cross_process_boundary() {
    type Msg = Vec<(String, [f64; 2], Option<u32>)>;
    let msg: Msg = vec![
        ("alpha".into(), [1.5, f64::NAN], Some(7)),
        ("β-mixed-utf8".into(), [-0.0, 1.0e-300], None),
    ];
    let expect = msg.to_wire_bytes();
    let sent = msg.clone();
    let out = proc("nested_payloads_cross_process_boundary").run(move |c| {
        if c.rank() == 0 {
            c.send(2, 1, sent.clone(), 64);
            Vec::new()
        } else if c.rank() == 2 {
            c.recv::<Msg>(0, 1).to_wire_bytes()
        } else {
            Vec::new()
        }
    });
    assert_eq!(out[2].result, expect, "payload bytes changed crossing the socket");
}
