//! Streaming-sink acceptance tests: the binary span format's golden byte
//! pin (schema v2), truncation recovery, Chrome fragment byte-identity with
//! the in-memory exporter, and full-series recovery from disk when the
//! in-memory flight ring has evicted records.

use overset_comm::trace::{TraceConfig, Tracer};
use overset_comm::{
    assemble_chrome, chrome_trace_json, read_span_dir, read_span_file, ArgVal, MachineModel, Phase,
    RankTrace, StreamConfig, Universe, WorkClass,
};
use std::path::PathBuf;

fn temp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("overset_sink_{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small traced workload: `steps` timesteps of flow compute, a ring halo
/// exchange in connectivity, a barrier per phase.
fn run_workload(trace: TraceConfig, steps: usize, step_capacity: usize) -> Vec<RankOutputLite> {
    Universe::builder()
        .ranks(3)
        .machine(&MachineModel::modern())
        .trace(trace)
        .step_capacity(step_capacity)
        .run(move |c| {
            for s in 0..steps {
                {
                    let mut ph = c.phase(Phase::Flow);
                    ph.compute(1.0e5 * (1 + s % 3) as f64, WorkClass::Flow);
                    let t0 = ph.now();
                    ph.trace_complete("conn", "mark", t0, &[("step", ArgVal::U64(s as u64))]);
                    ph.barrier();
                }
                {
                    let mut ph = c.phase(Phase::Connectivity);
                    let dst = (ph.rank() + 1) % ph.size();
                    let src = (ph.rank() + ph.size() - 1) % ph.size();
                    ph.send(dst, 3, s as u64, 128);
                    let _: u64 = ph.recv(src, 3);
                    ph.barrier();
                }
                c.end_step();
            }
        })
        .into_iter()
        .map(|o| RankOutputLite {
            trace: o.trace,
            steps: o.steps,
            alloc_steps: o.alloc_steps,
            steps_dropped: o.steps_dropped,
        })
        .collect()
}

struct RankOutputLite {
    trace: Vec<overset_comm::TraceEvent>,
    steps: Vec<overset_comm::StepRecord>,
    alloc_steps: Vec<overset_comm::AllocRecord>,
    steps_dropped: u64,
}

/// Golden byte pin of binary span schema v2: one rank-0 stream holding a
/// single argless `phase`/`flow` span, one per-step allocation record, and
/// a clean footer, built with the writer and compared against
/// hand-assembled literal bytes. Any header, framing, or payload-layout
/// change breaks this test — that's a conscious `SPAN_SCHEMA_VERSION`
/// bump, not a refresh.
#[test]
fn golden_bytes_pin_span_schema_v2() {
    let dir = temp_dir("golden_v2");
    let cfg = TraceConfig::enabled().with_stream(StreamConfig::binary(&dir));
    let mut t = Tracer::for_rank(&cfg, 0);
    t.complete("phase", "flow", 0.0, 2.0, Vec::new());
    let arec =
        overset_comm::AllocRecord { step: 0, allocs: [0, 3, 0, 0, 0], bytes: [0, 256, 0, 0, 0] };
    t.record_alloc_step(&arec);
    t.finish(0);

    let got = std::fs::read(dir.join("rank-00000.spans")).unwrap();
    let mut want: Vec<u8> = Vec::new();
    want.extend(*b"OSPN"); // magic
    want.extend([2, 0, 0, 0]); // schema version 2
    want.extend([0, 0, 0, 0]); // rank 0
    want.extend([89, 0, 0, 0]); // chunk len: 1 kind + 88 payload
    want.push(3); // kind 3: alloc record
    want.extend([0; 8]); // step 0
    want.extend([0; 8]); // allocs[flow]
    want.extend([3, 0, 0, 0, 0, 0, 0, 0]); // allocs[connectivity]
    want.extend([0; 24]); // allocs[motion..other]
    want.extend([0; 8]); // bytes[flow]
    want.extend([0, 1, 0, 0, 0, 0, 0, 0]); // bytes[connectivity] = 256
    want.extend([0; 24]); // bytes[motion..other]
    want.extend([58, 0, 0, 0]); // chunk len: 1 kind + 57 payload
    want.push(1); // kind 1: events
    want.extend([1, 0, 0, 0, 0, 0, 0, 0]); // Vec len: 1 event
    want.extend([5, 0, 0, 0, 0, 0, 0, 0]); // cat len
    want.extend(*b"phase");
    want.extend([4, 0, 0, 0, 0, 0, 0, 0]); // name len
    want.extend(*b"flow");
    want.extend([0; 8]); // ts = 0.0 (IEEE bits)
    want.extend([0, 0, 0, 0, 0, 0, 0, 0x40]); // dur = 2.0 (IEEE bits)
    want.extend([0; 8]); // 0 args
    want.extend([33, 0, 0, 0]); // chunk len: 1 kind + 32 payload
    want.push(0); // kind 0: footer
    want.extend([1, 0, 0, 0, 0, 0, 0, 0]); // total events
    want.extend([0; 8]); // total steps
    want.extend([0; 8]); // steps dropped
    want.extend([1, 0, 0, 0, 0, 0, 0, 0]); // total alloc records
    assert_eq!(got, want, "binary span layout drifted without a schema bump");

    let back = read_span_file(&dir.join("rank-00000.spans")).unwrap();
    assert_eq!(back.rank, 0);
    assert_eq!(back.events.len(), 1);
    assert_eq!(back.events[0].cat, "phase");
    assert_eq!(back.events[0].dur, 2.0);
    assert!(back.truncation.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The streamed binary dir carries exactly what the in-memory run records:
/// same spans, same step records, per rank (virtual time makes the two
/// runs identical).
#[test]
fn binary_stream_matches_in_memory_run() {
    let dir = temp_dir("roundtrip");
    let in_mem = run_workload(TraceConfig::enabled(), 4, 1024);
    let streamed =
        run_workload(TraceConfig::enabled().with_stream(StreamConfig::binary(&dir)), 4, 1024);

    // Streaming leaves nothing in memory...
    for o in &streamed {
        assert!(o.trace.is_empty(), "streamed run must not buffer spans in memory");
    }
    // ...and everything on disk.
    let sd = read_span_dir(&dir).unwrap();
    assert_eq!(sd.gaps, Vec::<String>::new());
    assert_eq!(sd.ranks.len(), in_mem.len());
    for ((mem, disk), streamed) in in_mem.iter().zip(&sd.ranks).zip(&streamed) {
        assert_eq!(mem.trace, disk.events);
        assert_eq!(mem.steps, disk.steps);
        // Tracing is allocation-invisible (tracer internals run with
        // attribution suspended), so the buffered and streamed runs agree
        // on alloc counts too — and the disk series carries them exactly.
        assert_eq!(mem.alloc_steps, streamed.alloc_steps);
        assert_eq!(streamed.alloc_steps, disk.alloc_steps);
        assert_eq!(disk.steps_dropped, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chrome fragment streaming: assembling the per-rank fragments yields a
/// document byte-identical to the in-memory exporter's.
#[test]
fn chrome_fragments_assemble_byte_identical_to_in_memory_export() {
    let dir = temp_dir("chrome_identity");
    let in_mem = run_workload(TraceConfig::enabled(), 5, 1024);
    run_workload(TraceConfig::enabled().with_stream(StreamConfig::chrome(&dir)), 5, 1024);

    let traces: Vec<RankTrace> = in_mem
        .into_iter()
        .enumerate()
        .map(|(rank, o)| RankTrace { rank, events: o.trace })
        .collect();
    let memory_doc = chrome_trace_json(&traces);
    let streamed_doc = assemble_chrome(&dir).unwrap();
    assert_eq!(streamed_doc, memory_doc, "streamed Chrome JSON must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The memory contract that motivates streaming: cap the flight ring far
/// below the step count, so the in-memory run keeps only a trailing window
/// — yet the streamed sink recovers the *full* per-step series from disk.
#[test]
fn capped_ring_long_run_recovers_full_series_from_disk() {
    const STEPS: usize = 12;
    const CAP: usize = 4;
    let dir = temp_dir("ring_recovery");
    let outs =
        run_workload(TraceConfig::enabled().with_stream(StreamConfig::binary(&dir)), STEPS, CAP);

    for o in &outs {
        assert_eq!(o.steps.len(), CAP, "ring must cap the in-memory series");
        assert_eq!(o.steps_dropped as usize, STEPS - CAP);
    }
    let sd = read_span_dir(&dir).unwrap();
    assert_eq!(sd.gaps, Vec::<String>::new());
    for (disk, mem) in sd.ranks.iter().zip(&outs) {
        assert_eq!(disk.steps.len(), STEPS, "disk must hold every step");
        assert_eq!(disk.alloc_steps.len(), STEPS, "disk must hold every alloc record");
        assert_eq!(disk.steps_dropped, mem.steps_dropped, "footer carries ring evictions");
        // The in-memory window is exactly the tail of the streamed series.
        assert_eq!(&disk.steps[STEPS - CAP..], &mem.steps[..]);
        assert_eq!(&disk.alloc_steps[STEPS - CAP..], &mem.alloc_steps[..]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation ladder: cutting a complete stream at every interesting
/// boundary yields the recovered prefix plus a message naming the gap;
/// corrupting the header is a hard error.
#[test]
fn truncated_streams_recover_prefix_and_name_the_gap() {
    let dir = temp_dir("truncation");
    run_workload(TraceConfig::enabled().with_stream(StreamConfig::binary(&dir)), 3, 1024);
    let path = dir.join("rank-00000.spans");
    let full = std::fs::read(&path).unwrap();
    let cut = |bytes: &[u8], name: &str| -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, bytes).unwrap();
        p
    };

    // Complete stream: full step count, no gap.
    let whole = read_span_file(&path).unwrap();
    assert_eq!(whole.steps.len(), 3);
    assert_eq!(whole.alloc_steps.len(), 3);
    assert!(whole.truncation.is_none());

    // Footer removed (37 = 4-byte length prefix + kind + (u64,u64,u64,u64)
    // payload): prefix intact, gap named.
    let no_footer = read_span_file(&cut(&full[..full.len() - 37], "no_footer.spans")).unwrap();
    assert_eq!(no_footer.steps.len(), 3);
    assert_eq!(no_footer.alloc_steps.len(), 3);
    assert_eq!(no_footer.events, whole.events);
    let msg = no_footer.truncation.unwrap();
    assert!(msg.contains("without a footer"), "{msg}");

    // Mid-body cut (one byte into the last pre-footer chunk, the step's
    // alloc record): the wounded chunk is dropped, everything before it
    // stays — a dead rank still yields a partial host profile.
    let mid = read_span_file(&cut(&full[..full.len() - 38], "mid_body.spans")).unwrap();
    assert!(mid.truncation.unwrap().contains("inside a chunk body"));
    assert_eq!(mid.steps.len(), 3, "step chunks before the cut must survive");
    assert_eq!(mid.alloc_steps.len(), 2, "the cut alloc chunk must be dropped, earlier ones kept");

    // Cut one byte into the last step chunk (93-byte alloc chunk follows
    // it): both the step and the trailing alloc record are lost.
    let step_cut =
        read_span_file(&cut(&full[..full.len() - 37 - 93 - 1], "step_cut.spans")).unwrap();
    assert!(step_cut.truncation.unwrap().contains("inside a chunk body"));
    assert_eq!(step_cut.steps.len(), 2, "the cut step chunk must be dropped, earlier ones kept");
    assert_eq!(step_cut.alloc_steps.len(), 2);

    // Cut inside a chunk header (leave 2 of the 4 length bytes).
    let hdr_cut = {
        // Position right after the file header plus two bytes.
        let p = cut(&full[..14], "hdr_cut.spans");
        read_span_file(&p).unwrap()
    };
    assert!(hdr_cut.truncation.unwrap().contains("inside a chunk header"));

    // Header-level damage is a hard error, not a recoverable gap.
    assert!(read_span_file(&cut(&full[..8], "too_short.spans")).is_err());
    let mut bad_magic = full.clone();
    bad_magic[0] = b'X';
    assert!(read_span_file(&cut(&bad_magic, "bad_magic.spans")).unwrap_err().contains("bad magic"));
    let mut bad_version = full.clone();
    bad_version[4] = 99;
    assert!(read_span_file(&cut(&bad_version, "bad_version.spans"))
        .unwrap_err()
        .contains("version 99 unsupported"));

    let _ = std::fs::remove_dir_all(&dir);
}
