//! Golden byte-identical test for the Chrome `trace_event` exporter.
//!
//! The workspace promises byte-deterministic trace JSON (same run → same
//! bytes), and downstream tools — `repro analyze`'s file mode, external
//! Perfetto pipelines — parse the exact layout. This test pins the full
//! output for a fixed two-rank trace, so any formatting change to the
//! exporter is a conscious diff of this file, not a silent drift.

use overset_comm::trace::{chrome_trace_json, ArgVal, RankTrace, TraceEvent};

fn fixed_two_rank_trace() -> Vec<RankTrace> {
    let rank0 = vec![
        TraceEvent {
            cat: "phase",
            name: "flow",
            ts: 0.0,
            dur: 1.5e-3,
            args: vec![("step", ArgVal::U64(0))],
        },
        TraceEvent {
            cat: "comm",
            name: "send",
            ts: 2.0e-3,
            dur: 1.0e-6,
            args: vec![
                ("dst", ArgVal::U64(1)),
                ("tag", ArgVal::U64(7)),
                ("bytes", ArgVal::U64(512)),
            ],
        },
    ];
    let rank1 = vec![TraceEvent {
        cat: "comm",
        name: "recv",
        ts: 0.0,
        dur: 2.5e-3,
        args: vec![
            ("src", ArgVal::U64(0)),
            ("tag", ArgVal::U64(7)),
            ("bytes", ArgVal::U64(512)),
            ("stall", ArgVal::F64(2.5e-3)),
            ("idle", ArgVal::F64(0.0)),
        ],
    }];
    vec![RankTrace { rank: 0, events: rank0 }, RankTrace { rank: 1, events: rank1 }]
}

const GOLDEN: &str = concat!(
    "{\"traceEvents\":[",
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,",
    "\"args\":{\"name\":\"rank 0\"}},\n",
    "{\"name\":\"flow\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\"tid\":0,",
    "\"ts\":0.000,\"dur\":1500.000,\"args\":{\"step\":0}},\n",
    "{\"name\":\"send\",\"cat\":\"comm\",\"ph\":\"X\",\"pid\":0,\"tid\":0,",
    "\"ts\":2000.000,\"dur\":1.000,\"args\":{\"dst\":1,\"tag\":7,\"bytes\":512}},",
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,",
    "\"args\":{\"name\":\"rank 1\"}},\n",
    "{\"name\":\"recv\",\"cat\":\"comm\",\"ph\":\"X\",\"pid\":1,\"tid\":0,",
    "\"ts\":0.000,\"dur\":2500.000,",
    "\"args\":{\"src\":0,\"tag\":7,\"bytes\":512,\"stall\":0.0025,\"idle\":0}}",
    "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\"}}\n",
);

#[test]
fn chrome_trace_json_matches_golden_bytes() {
    assert_eq!(chrome_trace_json(&fixed_two_rank_trace()), GOLDEN);
}

#[test]
fn chrome_trace_json_is_byte_identical_across_calls() {
    let a = chrome_trace_json(&fixed_two_rank_trace());
    let b = chrome_trace_json(&fixed_two_rank_trace());
    assert_eq!(a, b);
}
