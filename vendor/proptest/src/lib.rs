//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides the (small) subset of the proptest API the workspace's
//! property tests use: the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, `prop_assert!`/`prop_assert_eq!`,
//! numeric range strategies, tuples, `prop::collection::vec` and
//! `prop::array::uniform3`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics with
//! the case index and seed so it can be reproduced (generation is fully
//! deterministic per test name).

pub mod test_runner {
    use std::fmt;

    /// Error type returned from fallible test bodies and by the
    /// `prop_assert*` / `prop_assume!` macros.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        /// Case rejected by `prop_assume!`: skipped, not a failure.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl fmt::Display) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        pub fn reject(reason: impl fmt::Display) -> Self {
            TestCaseError::Reject(reason.to_string())
        }

        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(s) => f.write_str(s),
                TestCaseError::Reject(s) => write!(f, "rejected: {s}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: tiny, fast, deterministic.
    #[derive(Clone, Debug)]
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed)
        }

        /// Deterministic per-test seed derived from the test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Rng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// A value generator. Upstream proptest strategies also shrink; here
    /// they only sample.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut Rng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(isize, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut Rng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut Rng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A, B, C, D> Strategy for (A, B, C, D)
    where
        A: Strategy,
        B: Strategy,
        C: Strategy,
        D: Strategy,
    {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng), self.3.sample(rng))
        }
    }

    /// Length specification for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::array::uniform3`).
pub mod prop {
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy};
        use crate::test_runner::Rng;

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                let span = (self.size.hi - self.size.lo).max(1) as u64;
                let n = self.size.lo + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::Rng;

        pub struct Uniform3<S>(S);

        pub fn uniform3<S: Strategy>(elem: S) -> Uniform3<S> {
            Uniform3(elem)
        }

        impl<S: Strategy> Strategy for Uniform3<S> {
            type Value = [S::Value; 3];
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, Rng, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    }};
}

/// The test-defining macro. Supports
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_test(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::Rng::from_name(stringify!($name));
                for case in 0..cfg.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::sample(&($strat), &mut rng),)+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        if e.is_reject() {
                            continue; // prop_assume! skipped this case
                        }
                        panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
}
