//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the small part of the criterion API the
//! workspace benches use (`Criterion::bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`, `black_box`, the `criterion_group!`
//! / `criterion_main!` macros) as a plain wall-clock harness: warm up,
//! run timed batches for a target duration, report mean time per iteration.

use std::hint;
use std::time::{Duration, Instant};

/// Re-exported optimization barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How per-iteration inputs are batched; the stub treats all variants alike.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Benchmark driver. Configuration knobs are fixed: ~0.3 s warm-up and
/// ~1.2 s measurement per benchmark.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warmup: Duration::from_millis(300), measure: Duration::from_millis(1200) }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::Warmup,
            deadline: Instant::now() + self.warmup,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.mode = Mode::Measure;
        b.deadline = Instant::now() + self.measure;
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        f(&mut b);
        let per_iter = if b.iters == 0 { Duration::ZERO } else { b.elapsed / b.iters as u32 };
        println!("{name:<45} time: {:>12.3?}  ({} iterations)", per_iter, b.iters);
        self
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Warmup,
    Measure,
}

/// Timing loop handle passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    mode: Mode,
    deadline: Instant,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        loop {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            if self.mode == Mode::Measure {
                self.iters += 1;
                self.elapsed += dt;
            }
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            if self.mode == Mode::Measure {
                self.iters += 1;
                self.elapsed += dt;
            }
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
