#!/usr/bin/env bash
# Perf regression gate: regenerate the quick run report and compare it
# against the committed baseline (BENCH_quick.json at the repo root).
#
# The report contains only virtual-time quantities, so it is byte-stable
# across hosts; any drift is a real behaviour change. Exit codes: 0 pass,
# 1 regression, 2 usage/IO error.
#
#   BENCH_TOL_PCT   relative tolerance in percent (default 5)
#   BENCH_UPDATE=1  rewrite the baseline instead of comparing (use when a
#                   PR intentionally shifts performance; commit the result)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_quick.json
TOL="${BENCH_TOL_PCT:-5}"

cargo build --release -p overset-bench --bin repro

if [[ ! -f "$BASELINE" ]]; then
    echo "== bench gate: no baseline found, bootstrapping $BASELINE =="
    ./target/release/repro report table1 --quick -o "$BASELINE"
    echo "Baseline written; commit $BASELINE to arm the gate."
    exit 0
fi

if [[ "${BENCH_UPDATE:-0}" == "1" ]]; then
    echo "== bench gate: rewriting baseline $BASELINE (BENCH_UPDATE=1) =="
    ./target/release/repro report table1 --quick -o "$BASELINE"
    echo "Baseline updated; commit $BASELINE with the change that moved it."
    exit 0
fi

NEW="$(mktemp /tmp/BENCH_quick.XXXXXX.json)"
trap 'rm -f "$NEW"' EXIT
echo "== bench gate: quick report vs $BASELINE (tolerance ${TOL}%) =="
./target/release/repro report table1 --quick -o "$NEW"
./target/release/repro compare "$BASELINE" "$NEW" --tol-pct "$TOL"
