#!/usr/bin/env bash
# Perf regression gate: regenerate the quick run report and compare it
# against the committed baseline (BENCH_quick.json at the repo root).
#
# The gated metrics are virtual-time quantities and allocation counts, so
# they are byte-stable across hosts; any drift is a real behaviour change.
# The baseline additionally carries a host.bench section (median/IQR host
# phase times from repeated runs) so the noise-aware host gate has data to
# compare against when a fresh bench-host report is offered. Exit codes:
# 0 pass, 1 regression, 2 usage/IO error.
#
#   BENCH_TOL_PCT   relative tolerance in percent (default 5)
#   BENCH_UPDATE=1  rewrite the baseline instead of comparing (use when a
#                   PR intentionally shifts performance; commit the result)
#   BENCH_REPEATS   bench-host repeats when (re)writing the baseline (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_quick.json
TOL="${BENCH_TOL_PCT:-5}"
REPEATS="${BENCH_REPEATS:-3}"

cargo build --release -p overset-bench --bin repro

if [[ ! -f "$BASELINE" ]]; then
    echo "== bench gate: no baseline found, bootstrapping $BASELINE =="
    ./target/release/repro bench-host table1 --quick --repeats "$REPEATS" -o "$BASELINE"
    echo "Baseline written; commit $BASELINE to arm the gate."
    exit 0
fi

if [[ "${BENCH_UPDATE:-0}" == "1" ]]; then
    echo "== bench gate: rewriting baseline $BASELINE (BENCH_UPDATE=1) =="
    ./target/release/repro bench-host table1 --quick --repeats "$REPEATS" -o "$BASELINE"
    echo "Baseline updated; commit $BASELINE with the change that moved it."
    exit 0
fi

NEW="$(mktemp /tmp/BENCH_quick.XXXXXX.json)"
trap 'rm -f "$NEW"' EXIT
echo "== bench gate: quick report vs $BASELINE (tolerance ${TOL}%) =="
./target/release/repro report table1 --quick -o "$NEW"
./target/release/repro compare "$BASELINE" "$NEW" --tol-pct "$TOL"
