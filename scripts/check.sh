#!/usr/bin/env bash
# Full pre-merge gate: lint, format, tier-1 build+test, and the golden
# Chrome-trace schema/determinism tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== golden trace schema + determinism =="
cargo test -q -p overflow-d --test observability

echo "== M:N scheduler: 512 virtual ranks on 8 OS threads =="
cargo test -q --release -p overflow-d --test scheduler_modes -- --ignored

echo "== criterion microbenches compile =="
cargo bench --no-run

echo "== repro smoke test =="
./target/release/repro table1 --quick > /dev/null

echo "== inverse-map ablation smoke test =="
ABLATE_OUT="$(./target/release/repro ablate-invmap --quick)"
if grep -q "DIVERGED" <<< "$ABLATE_OUT" || ! grep -q "bit-equal" <<< "$ABLATE_OUT"; then
    echo "ablate-invmap: answers diverged between map on/off" >&2
    exit 1
fi

echo "== arena ablation smoke test =="
ARENA_OUT="$(./target/release/repro ablate-arena --quick)"
if grep -q "DIVERGED" <<< "$ARENA_OUT" || ! grep -q "bit-equal" <<< "$ARENA_OUT"; then
    echo "ablate-arena: answers diverged between arena on/off" >&2
    exit 1
fi
if ! grep -q "ALLOC-GATE: PASS" <<< "$ARENA_OUT"; then
    echo "ablate-arena: allocation-reduction gate failed" >&2
    grep "ALLOC-GATE" <<< "$ARENA_OUT" >&2 || true
    exit 1
fi

echo "== SIMD ablation smoke test =="
# Bit-equality of states/walks/virtual clocks between the lane-batched and
# scalar kernels is required. The host-speedup gate (SIMD-GATE) is advisory
# at quick effort: the quick cases are small and CI hosts are noisy/often
# oversubscribed, so a FAIL is reported but does not fail the check.
SIMD_OUT="$(./target/release/repro ablate-simd --quick)"
if grep -q "DIVERGED" <<< "$SIMD_OUT" || ! grep -q "bit-equal" <<< "$SIMD_OUT"; then
    echo "ablate-simd: results diverged between SIMD on/off" >&2
    exit 1
fi
if ! grep -q "SIMD-GATE: PASS" <<< "$SIMD_OUT"; then
    echo "ablate-simd: host-speedup gate did not pass (advisory at quick effort):" >&2
    grep "SIMD-GATE" <<< "$SIMD_OUT" >&2 || true
fi

echo "== analyzer smoke test =="
./target/release/repro analyze table1 --quick > /dev/null

echo "== analyze-diff smoke: byte-deterministic diff of two quick analyses =="
DIFF_TMP="$(mktemp -d)"
trap 'rm -rf "$DIFF_TMP"' EXIT
./target/release/repro analyze table1 --quick --json -o "$DIFF_TMP/a.json" > /dev/null
./target/release/repro analyze table1 --quick --json -o "$DIFF_TMP/b.json" > /dev/null
cmp "$DIFF_TMP/a.json" "$DIFF_TMP/b.json" || {
    echo "analyze --json: two identical quick runs produced different documents" >&2
    exit 1
}
./target/release/repro analyze-diff "$DIFF_TMP/a.json" "$DIFF_TMP/b.json" > "$DIFF_TMP/d1.txt"
./target/release/repro analyze-diff "$DIFF_TMP/a.json" "$DIFF_TMP/b.json" > "$DIFF_TMP/d2.txt"
cmp "$DIFF_TMP/d1.txt" "$DIFF_TMP/d2.txt" || {
    echo "analyze-diff: output not byte-deterministic" >&2
    exit 1
}
grep -q "no wait-state regressions beyond tolerance" "$DIFF_TMP/d1.txt" || {
    echo "analyze-diff: self-diff must report no regressions" >&2
    exit 1
}

echo "== alloc determinism smoke: identical runs must gate-compare clean =="
./target/release/repro report table1 --quick -o "$DIFF_TMP/r1.json" > /dev/null
./target/release/repro report table1 --quick -o "$DIFF_TMP/r2.json" > /dev/null
./target/release/repro compare "$DIFF_TMP/r1.json" "$DIFF_TMP/r2.json" > /dev/null || {
    echo "alloc determinism: two identical quick runs failed the exact gate" >&2
    exit 1
}

echo "== alloc gate smoke: injected allocations must fail the compare =="
./target/release/repro report table1 --quick --inject-alloc 64 -o "$DIFF_TMP/r3.json" > /dev/null
INJECT_RC=0
./target/release/repro compare "$DIFF_TMP/r1.json" "$DIFF_TMP/r3.json" > /dev/null || INJECT_RC=$?
if [[ "$INJECT_RC" != "1" ]]; then
    echo "alloc gate: --inject-alloc 64 should make compare exit 1 (got $INJECT_RC)" >&2
    exit 1
fi

echo "== host report smoke: analyze --host must be byte-deterministic =="
./target/release/repro analyze "$DIFF_TMP/r1.json" --host -o "$DIFF_TMP/h1.txt" > /dev/null
./target/release/repro analyze "$DIFF_TMP/r1.json" --host -o "$DIFF_TMP/h2.txt" > /dev/null
cmp "$DIFF_TMP/h1.txt" "$DIFF_TMP/h2.txt" || {
    echo "analyze --host: output not byte-deterministic" >&2
    exit 1
}

echo "== multi-process transport: bit-equality smoke =="
SMOKE_OUT="$(./target/release/repro smoke)"
if ! grep -q "bit-equal" <<< "$SMOKE_OUT"; then
    echo "transport smoke: proc and inproc backends diverged" >&2
    exit 1
fi

echo "== multi-process transport: killed-child robustness =="
cargo test -q --release -p overset-comm --test transport_conformance killed_child

echo "== perf regression gate =="
./scripts/bench_gate.sh

echo "All checks passed."
