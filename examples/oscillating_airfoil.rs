//! The paper's first test problem in full: a NACA 0012 airfoil pitching
//! through α(t) = 5°·sin(πt/2) at M∞ = 0.8, Re = 10⁶, computed on the
//! three-grid overset system, comparing the static partition across node
//! counts (the paper's Table 1 sweep) on both 1997 machines.
//!
//! ```text
//! cargo run --release --example oscillating_airfoil [-- --full]
//! ```

use overflow_d::{airfoil_case, run_case};
use overset_comm::MachineModel;
use overset_motion::Prescribed;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1.0 } else { 0.5 };
    let steps = if full { 20 } else { 10 };

    // Show the prescribed motion over the first quarter period.
    let mut pitch = Prescribed::paper_airfoil_pitch();
    println!("prescribed pitch schedule (deg):");
    let dt = 0.25;
    print!("  t:     ");
    for i in 0..=8 {
        print!("{:7.2}", i as f64 * dt);
    }
    println!();
    print!("  alpha: ");
    for _ in 0..=8 {
        print!("{:7.3}", pitch.current_angle().to_degrees());
        pitch.step(dt);
    }
    println!("\n");

    for machine in [MachineModel::ibm_sp2(), MachineModel::ibm_sp()] {
        println!("machine: {}", machine.name);
        println!(
            "{:>6} {:>12} {:>12} {:>10} {:>10}",
            "nodes", "t/step (s)", "Mflops/node", "speedup", "%DCF3D"
        );
        let mut base = None;
        for nodes in [6usize, 9, 12, 18, 24] {
            let cfg = airfoil_case(scale, steps);
            let r = run_case(&cfg, nodes, &machine).unwrap();
            let t = r.time_per_step();
            let b = *base.get_or_insert(t);
            println!(
                "{:>6} {:>12.3} {:>12.1} {:>10.2} {:>9.1}%",
                nodes,
                t,
                r.mflops_per_node(),
                b / t,
                100.0 * r.connectivity_fraction()
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper, Table 1): speedup ≈ 3.6–3.8 at 24 nodes, \
         %DCF3D rising from ~8-10% to ~14%, DCF3D scaling worse than OVERFLOW."
    );
}
