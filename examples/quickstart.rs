//! Quickstart: run a small moving-body overset calculation end to end.
//!
//! Builds the paper's three-grid oscillating-airfoil system at reduced
//! resolution, runs it on 6 simulated IBM SP2 nodes, and prints the headline
//! performance statistics (the quantities in the paper's Table 1).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use overflow_d::{airfoil_case, run_case};
use overset_comm::{MachineModel, Phase};

fn main() {
    // A reduced-size case (scale 0.5 ≈ 16K gridpoints) for a fast demo;
    // pass `--full` for the paper's 64K-point system.
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1.0 } else { 0.5 };
    let steps = 10;

    let cfg = airfoil_case(scale, steps);
    println!("case: {}", cfg.name);
    println!("grids: {}", cfg.grids.len());
    for g in &cfg.grids {
        println!("  {:18} {:?} = {} points", g.name, g.dims(), g.num_points());
    }
    println!("composite: {} points, {} timesteps\n", cfg.total_points(), steps);

    let nranks = 6;
    let machine = MachineModel::ibm_sp2();
    println!("running on {nranks} simulated {} nodes...", machine.name);
    let t0 = std::time::Instant::now();
    let r = run_case(&cfg, nranks, &machine).unwrap();
    println!("(host wall time: {:?})\n", t0.elapsed());

    println!("virtual time per step : {:.3} s", r.time_per_step());
    println!("avg Mflops per node   : {:.1}", r.mflops_per_node());
    println!("% time in DCF3D       : {:.1}%", 100.0 * r.connectivity_fraction());
    println!(
        "phase split (s/step)  : flow {:.3}, motion {:.4}, connectivity {:.3}",
        r.phase_elapsed[Phase::Flow as usize] / steps as f64,
        r.phase_elapsed[Phase::Motion as usize] / steps as f64,
        r.phase_elapsed[Phase::Connectivity as usize] / steps as f64,
    );
    println!(
        "inter-grid boundary pts: {} ({:.1} per 1000 gridpoints)",
        r.igbps_last,
        1000.0 * r.igbps_last as f64 / r.total_points as f64
    );
    println!("donor-search imbalance f_max: {:.2}", r.f_max());
    println!("orphan fringe points  : {}", r.orphans_last);
    assert!(r.state_rms.is_finite(), "solution blew up");
    println!("\nsolution RMS checksum : {:.6}", r.state_rms);
}
