//! The paper's third test problem: finned-store separation from a
//! wing/pylon at M∞ = 1.6 on the 16-grid overset system — the
//! connectivity-heavy case that motivates the dynamic load balancing
//! scheme (Algorithm 2). Runs static and dynamic balancing side by side.
//!
//! ```text
//! cargo run --release --example store_separation [-- --full] [-- --sixdof]
//! ```
//!
//! `--sixdof` computes the store's free motion from the integrated
//! aerodynamic loads (+ gravity and an ejector impulse) instead of the
//! prescribed trajectory — the paper: "the free motion can be computed with
//! negligible change in the parallel performance of the code".

use overflow_d::{run_case, store_case, store_case_sixdof, LbConfig};
use overset_comm::{MachineModel, Phase};
use overset_motion::Prescribed;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1.0 } else { 0.5 };
    let steps = if full { 16 } else { 8 };
    let nodes = 28;

    // The prescribed ejection trajectory (the paper: "the motion of the
    // store is specified ... rather than computed").
    let mut eject = Prescribed::store_ejection([1.5, 0.0, -0.8]);
    println!("store ejection trajectory (z-drop and pitch vs time):");
    let dt = 0.1;
    let mut drop = 0.0;
    for i in 0..8 {
        let t = eject.step(dt);
        drop += t.translation[2];
        println!(
            "  t = {:4.2}: z-drop {:7.4}, pitch {:7.3} deg",
            (i + 1) as f64 * dt,
            drop,
            eject.current_angle().to_degrees()
        );
    }
    println!();

    let machine = MachineModel::ibm_sp2();
    let sixdof = std::env::args().any(|a| a == "--sixdof");
    for (label, lb) in [
        ("static load balancing (f_o = inf)", LbConfig::static_only()),
        ("dynamic load balancing (f_o = 3)", LbConfig::dynamic(3.0, 5)),
    ] {
        let mut cfg =
            if sixdof { store_case_sixdof(scale, steps) } else { store_case(scale, steps) };
        cfg.lb = lb;
        println!("{label}, {nodes} {} nodes:", machine.name);
        let t0 = std::time::Instant::now();
        let r = run_case(&cfg, nodes, &machine).unwrap();
        println!("  composite points     : {}", r.total_points);
        println!("  time per step        : {:.3} s", r.time_per_step());
        println!(
            "  flow / connectivity  : {:.3} / {:.3} s per step",
            r.phase_elapsed[Phase::Flow as usize] / steps as f64,
            r.phase_elapsed[Phase::Connectivity as usize] / steps as f64
        );
        println!("  %DCF3D               : {:.1}%", 100.0 * r.connectivity_fraction());
        println!("  service imbalance    : f_max = {:.2}", r.f_max());
        println!("  repartitions         : {}", r.repartitions);
        println!("  final np(n)          : {:?}", r.np_final);
        println!("  (host wall: {:?})\n", t0.elapsed());
    }
    println!(
        "Expected shape (paper, Table 5 / Fig. 11): the dynamic scheme \
         improves DCF3D's balance but costs the flow solver more than it \
         gains — static wins overall for this flow-dominated case."
    );
}
