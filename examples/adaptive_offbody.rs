//! The Section-5 adaptive overset Cartesian scheme: near-body curvilinear
//! grid around an X-38-like blunt body, off-body domain automatically
//! partitioned into hundreds of seven-parameter Cartesian bricks, grouped
//! onto processor groups with Algorithm 3 and advanced group-parallel.
//!
//! ```text
//! cargo run --release --example adaptive_offbody
//! ```

use overset_amr::{AdaptiveScheme, SchemeConfig};
use overset_grid::transform::RigidTransform;

fn main() {
    let ngroups = 4;
    let mut s = AdaptiveScheme::new(SchemeConfig::x38_like(ngroups));
    s.connectivity();
    let r = s.report();
    println!("initial system:");
    println!("  near-body points : {}", r.nearbody_points);
    println!("  off-body bricks  : {} (per level: {:?})", r.nbricks, r.level_hist);
    println!("  off-body points  : {}", r.offbody_points);
    println!("  groups           : {ngroups}, imbalance {:.2}", r.group_imbalance);

    println!("\nadvancing 3 steps (group-parallel flow solve)...");
    let t0 = std::time::Instant::now();
    for _ in 0..3 {
        s.step();
    }
    println!("  host wall: {:?}", t0.elapsed());
    let r = s.report();
    println!(
        "  connectivity: {} O(1) Cartesian locates vs {} curvilinear donor searches",
        r.cartesian_locates, r.curvilinear_searches
    );

    println!("\nbody moves; adapt cycle refines ahead and coarsens behind...");
    let stats = s.move_and_adapt(&RigidTransform::translation([1.5, 0.0, 0.4]));
    println!(
        "  bricks {} -> {} (refined {} regions, coarsened {})",
        stats.bricks_before, stats.bricks_after, stats.refined, stats.coarsened
    );
    println!("  levels before: {:?}", stats.hist_before);
    println!("  levels after : {:?}", stats.hist_after);
    println!("  points transferred: {}", stats.points_transferred);

    for _ in 0..2 {
        s.step();
    }
    let r = s.report();
    println!("\nafter 2 more steps on the adapted system:");
    println!(
        "  group imbalance {:.2}, inter-group cut fraction {:.2}",
        r.group_imbalance, r.cut_fraction
    );
    println!(
        "  Cartesian locates {} vs donor searches {} — \"the vast majority of \
         the interpolation donors exist in Cartesian grid components\"",
        r.cartesian_locates, r.curvilinear_searches
    );
}
